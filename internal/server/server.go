// Package server hosts Transformation Server pipelines (Section 5) as
// a long-running concurrent service: registered pipelines tick at
// their own intervals on a sharded timer-heap scheduler (a fixed set
// of shard goroutines owning next-fire deadline heaps, dispatching
// into a bounded worker pool — O(shards+workers) goroutines whether
// ten pipelines are registered or ten thousand), and the latest
// outputs are published over HTTP.
//
// Legacy (unversioned) endpoints, kept bit-for-bit stable:
//
//	GET /{name}            latest document (XML, or JSON when the
//	                       Accept header prefers application/json)
//	GET /{name}/history?n=K  the K most recent documents, newest first
//	GET /healthz           liveness: 200 once the server is ticking
//	GET /statusz           per-pipeline tick counts, errors, latencies
//
// The versioned wrapper-lifecycle API lives under /v1 (see v1.go):
// wrappers can be compiled and registered at runtime, extracted from
// synchronously, observed, and retired, with a uniform JSON error
// envelope {"error":{"kind","message","pos"}}.
//
// Lifecycle is context-driven: Run blocks until the context is
// cancelled, then stops the scheduler shards, drains queued and
// in-flight ticks, and shuts the HTTP listener down gracefully.
// Dynamically registered pipelines participate: each is drained on
// DELETE and on shutdown, and PATCH /v1/wrappers/{name} reschedules a
// wrapper in the live deadline heap without a restart.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/resultlog"
	"repro/internal/transform"
	"repro/internal/xmlenc"
)

// Pipeline is one independently scheduled unit of work: a Section 6
// application (or any other information pipe) that can run one
// synchronous activation round and exposes its delivery collector.
type Pipeline interface {
	// PipeName is the stable route name (e.g. "nowplaying").
	PipeName() string
	// Tick runs one synchronous activation round. The returned error
	// is recorded in the pipeline's status; it does not stop the
	// schedule.
	Tick() error
	// Output is the collector whose documents the server publishes.
	Output() *transform.Collector
}

// Config tunes the server.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// DefaultInterval is the tick interval for pipelines registered
	// with interval 0 (default 2s).
	DefaultInterval time.Duration
	// ShutdownGrace bounds how long Run waits for open HTTP
	// connections on shutdown (default 5s).
	ShutdownGrace time.Duration
	// ReadTimeout, WriteTimeout and IdleTimeout are applied to the
	// http.Server (defaults 5s / 10s / 60s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for live
	// profiling of a running server.
	EnablePprof bool
	// AllowDynamic enables runtime wrapper registration through
	// POST /v1/wrappers and /v1/extract. Off by default: accepting
	// programs from the network is an operator decision.
	AllowDynamic bool
	// DynamicFetcher resolves document URLs for dynamically registered
	// wrappers that do not carry an inline page, and for url-based
	// one-shot extractions. Nil means such requests are rejected.
	DynamicFetcher elog.Fetcher
	// MaxProgramBytes bounds the request body of the /v1 compile and
	// extract endpoints (default 256 KiB).
	MaxProgramBytes int
	// MaxCompilesPerMinute rate-limits program compilation across the
	// /v1 endpoints (token bucket; default 60, negative = unlimited).
	MaxCompilesPerMinute int
	// SchedulerShards is the number of timer-shard goroutines owning
	// the pipeline deadline heaps (default 4).
	SchedulerShards int
	// SchedulerWorkers bounds how many pipeline ticks run concurrently
	// (default GOMAXPROCS, at least 4).
	SchedulerWorkers int
	// SchedulerQueue is the dispatch queue capacity between the timer
	// shards and the worker pool (default 16× workers, at least 256).
	// A full queue counts dropped ticks on /statusz.
	SchedulerQueue int
	// SchedulerJitter spreads every deadline by ±jitter·interval
	// (0..0.5), decorrelating pipelines registered at the same instant
	// so a fleet does not fire in lockstep. Default 0.
	SchedulerJitter float64
	// SharedCache, when set, is the shared fetch/document layer:
	// dynamically registered wrappers without an inline page resolve
	// their fetches through it (deduplicating fetch+parse across
	// wrappers monitoring the same URLs), and its counters appear on
	// /statusz and GET /v1/wrappers.
	SharedCache *fetchcache.Cache
	// WatchQueue is the per-subscriber event queue depth on the SSE
	// watch routes (default 8). A subscriber that falls further behind
	// than this loses its oldest pending events (counted in the
	// delivery stats as dropped_slow) and coalesces onto newer state.
	WatchQueue int
	// WatchHeartbeat is the interval between SSE comment heartbeats on
	// idle watch streams (default 15s), keeping intermediaries from
	// closing quiet connections.
	WatchHeartbeat time.Duration
	// MatchCache, when set, is the fleet-shared pattern-match layer
	// (elog.MatchCache): dynamically registered wrappers attach their
	// evaluators to it, so wrappers containing identical extraction
	// paths reuse each other's compiled match results on shared pages.
	// Its counters appear on /statusz and GET /v1/wrappers as
	// "match_cache". Pair with SharedCache to also share the fetches.
	MatchCache *elog.MatchCache
	// ResultStore, when set, is the durable delivery layer
	// (internal/resultlog): every pipeline's results are journaled to a
	// per-wrapper append-only log, Restore rehydrates rings, snapshots,
	// dynamic registrations and webhook cursors after a restart, and
	// the store's counters appear on /statusz as "persistence".
	ResultStore *resultlog.Store
	// WebhookTimeout bounds one outbound webhook POST (default 5s).
	WebhookTimeout time.Duration
	// WebhookMaxAttempts is how many consecutive failures one delivery
	// may burn before the endpoint's circuit breaker opens (default 6).
	WebhookMaxAttempts int
	// WebhookBackoffMin/Max bound the exponential retry backoff
	// (defaults 100ms / 30s).
	WebhookBackoffMin time.Duration
	WebhookBackoffMax time.Duration
	// WebhookCooldown is how long an open breaker waits before its
	// half-open probe (default 30s).
	WebhookCooldown time.Duration
	// MaxWebhooksPerWrapper caps endpoint registrations per wrapper
	// (default 16).
	MaxWebhooksPerWrapper int
	// NoIncrementalOutput disables the incremental output path: dynamic
	// wrappers rebuild their full XML document every tick
	// (transform.WrapperSource.NoIncrementalOutput) and snapshots are
	// encoded statelessly instead of splicing cached byte ranges of
	// unchanged frozen subtrees. Published bytes are identical either
	// way; set this only to measure or to pin the full-rebuild path.
	NoIncrementalOutput bool
	// Logf, when set, receives server lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = ":8080"
	}
	if out.DefaultInterval <= 0 {
		out.DefaultInterval = 2 * time.Second
	}
	if out.ShutdownGrace <= 0 {
		out.ShutdownGrace = 5 * time.Second
	}
	if out.ReadTimeout <= 0 {
		out.ReadTimeout = 5 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 60 * time.Second
	}
	if out.MaxProgramBytes == 0 {
		out.MaxProgramBytes = 256 << 10
	}
	if out.MaxCompilesPerMinute == 0 {
		out.MaxCompilesPerMinute = 60
	}
	if out.SchedulerShards <= 0 {
		out.SchedulerShards = 4
	}
	if out.SchedulerWorkers <= 0 {
		out.SchedulerWorkers = max(4, runtime.GOMAXPROCS(0))
	}
	if out.SchedulerQueue <= 0 {
		out.SchedulerQueue = max(256, 16*out.SchedulerWorkers)
	}
	if out.SchedulerJitter < 0 {
		out.SchedulerJitter = 0
	}
	if out.WatchQueue <= 0 {
		out.WatchQueue = 8
	}
	if out.WatchHeartbeat <= 0 {
		out.WatchHeartbeat = 15 * time.Second
	}
	if out.WebhookTimeout <= 0 {
		out.WebhookTimeout = 5 * time.Second
	}
	if out.WebhookMaxAttempts <= 0 {
		out.WebhookMaxAttempts = 6
	}
	if out.WebhookBackoffMin <= 0 {
		out.WebhookBackoffMin = 100 * time.Millisecond
	}
	if out.WebhookBackoffMax <= 0 {
		out.WebhookBackoffMax = 30 * time.Second
	}
	if out.WebhookCooldown <= 0 {
		out.WebhookCooldown = 30 * time.Second
	}
	if out.MaxWebhooksPerWrapper <= 0 {
		out.MaxWebhooksPerWrapper = 16
	}
	if out.SchedulerJitter > 0.5 {
		// Above 0.5 the jittered deadline could approach zero delay,
		// degenerating into continuous ticking.
		out.SchedulerJitter = 0.5
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is the pipeline registry and HTTP front end.
type Server struct {
	cfg Config

	mu       sync.Mutex
	pipes    map[string]*pipeState
	order    []string
	addr     string
	started  bool
	draining bool
	sched    *sched // sharded timer-heap scheduler; set by Run

	// readPipes mirrors pipes for the read path: GET handlers resolve
	// names through this sync.Map (one lock-free lookup) and never
	// acquire s.mu. Mutated only under s.mu, alongside pipes.
	readPipes sync.Map // name → *pipeState

	limiter *rateLimiter // compile rate limit for the /v1 endpoints

	ready     chan struct{} // closed once the listener is bound
	drainCh   chan struct{} // closed when shutdown begins; ends SSE streams
	drainOnce sync.Once
}

// New returns an empty server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pipes:   map[string]*pipeState{},
		limiter: newRateLimiter(cfg.MaxCompilesPerMinute),
		ready:   make(chan struct{}),
		drainCh: make(chan struct{}),
	}
}

// validName reports whether a pipeline name is routable: non-empty, no
// path separators, and not one of the reserved endpoint names.
func validName(name string) bool {
	switch name {
	case "", "healthz", "statusz", "debug", "v1":
		return false
	}
	return !strings.ContainsAny(name, "/?#%")
}

// initPipe wires a freshly built pipeState's delivery plane: the
// webhook registry and, when a result store is configured, the WAL
// journal. Must run before the pipeline's first tick.
func (s *Server) initPipe(ps *pipeState) error {
	ps.hooks.init(s, ps)
	ps.deliver.hooks = &ps.hooks
	ps.deliver.noSplice = s.cfg.NoIncrementalOutput
	return s.attachPersist(ps)
}

// Register adds a pipeline ticking at the given interval (0 uses the
// configured default). It fails on duplicate or reserved names. For
// registration while the server is running, see RegisterDynamic.
func (s *Server) Register(p Pipeline, interval time.Duration) error {
	name := p.PipeName()
	if !validName(name) {
		return fmt.Errorf("server: invalid pipeline name %q", name)
	}
	if interval <= 0 {
		interval = s.cfg.DefaultInterval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("server: cannot register %q after Run has started", name)
	}
	if _, dup := s.pipes[name]; dup {
		return fmt.Errorf("server: duplicate pipeline %q", name)
	}
	ps := &pipeState{p: p, name: name, interval: interval}
	if err := s.initPipe(ps); err != nil {
		return err
	}
	s.pipes[name] = ps
	s.order = append(s.order, name)
	s.readPipes.Store(name, ps)
	return nil
}

// errors distinguishing the registration failure modes for the HTTP
// layer.
var (
	errUnknownPipeline   = errors.New("server: unknown pipeline")
	errStaticPipeline    = errors.New("server: pipeline is not dynamic")
	errDuplicatePipeline = errors.New("duplicate pipeline")
	errShuttingDown      = errors.New("server shutting down")
	errFirstTick         = errors.New("first extraction failed")
)

// RegisterDynamic adds a pipeline at runtime: it reserves the name,
// runs one synchronous tick (so the wrapper serves results the moment
// registration returns — and a broken wrapper is rejected instead of
// failing silently on its schedule), then starts the scheduler
// goroutine unless the pipeline is on-demand. It is safe to call while
// Run is serving; before Run, the pipeline starts ticking when Run
// does.
func (s *Server) RegisterDynamic(p Pipeline, interval time.Duration, onDemand bool) error {
	name := p.PipeName()
	if !validName(name) {
		return fmt.Errorf("server: invalid pipeline name %q", name)
	}
	if interval <= 0 {
		interval = s.cfg.DefaultInterval
	}
	ps := &pipeState{p: p, name: name, interval: interval, dynamic: true, onDemand: onDemand,
		skipFirst: true, registering: true}
	if err := s.initPipe(ps); err != nil {
		return err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: %w", errShuttingDown)
	}
	if _, dup := s.pipes[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("server: %w %q", errDuplicatePipeline, name)
	}
	s.pipes[name] = ps
	s.order = append(s.order, name)
	s.readPipes.Store(name, ps)
	s.mu.Unlock()

	// First tick outside the lock: compilation already happened, but
	// the first extraction may fetch pages.
	ps.tickOnce()
	if msg := func() string {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		return ps.lastErr
	}(); msg != "" {
		s.removePipeIf(name, ps)
		closePipe(ps.p)
		if s.cfg.ResultStore != nil {
			// The rejected wrapper's validation tick may have journaled;
			// its log must not survive a registration that failed.
			s.cfg.ResultStore.Remove(name)
		}
		return fmt.Errorf("server: wrapper %q: %w: %s", name, errFirstTick, msg)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		// Shutdown raced registration: drop the pipe again.
		s.removePipeLocked(name)
		closePipe(ps.p)
		return fmt.Errorf("server: %w", errShuttingDown)
	}
	if s.pipes[name] != ps {
		// A concurrent DELETE raced the first tick; stay deregistered.
		return fmt.Errorf("server: pipeline %q deregistered during registration", name)
	}
	// startLocked reads the live interval/onDemand flags, so a PATCH
	// that raced the first tick (deferred while registering) takes
	// effect here.
	ps.registering = false
	if s.started {
		s.startLocked(ps)
	}
	s.cfg.Logf("server: registered dynamic pipeline %q (interval %s, on-demand %v)", name, interval, onDemand)
	return nil
}

// Deregister retires a dynamically registered pipeline: it is removed
// from the registry, unscheduled from its timer shard, and the call
// blocks until any queued or in-flight tick has drained.
func (s *Server) Deregister(name string) error {
	s.mu.Lock()
	ps := s.pipes[name]
	if ps == nil {
		s.mu.Unlock()
		return errUnknownPipeline
	}
	if !ps.dynamic {
		s.mu.Unlock()
		return errStaticPipeline
	}
	s.removePipeLocked(name)
	entry, sched := ps.entry, s.sched
	ps.entry = nil
	s.mu.Unlock()
	if entry != nil && sched != nil {
		sched.remove(entry)
	}
	closePipe(ps.p)
	if s.cfg.ResultStore != nil {
		// A retired wrapper's history and webhook cursors do not outlive
		// its registration (the hook set was closed by removePipeLocked,
		// so no dispatcher recreates the directory).
		s.cfg.ResultStore.Remove(name)
	}
	s.cfg.Logf("server: deregistered pipeline %q", name)
	return nil
}

// closePipe releases a retired pipeline's external attachments (e.g. a
// dynamic wrapper detaching from the fleet-shared match cache). Called
// only after the pipeline can no longer tick.
func closePipe(p Pipeline) {
	if c, ok := p.(interface{ Close() }); ok {
		c.Close()
	}
}

// SetInterval reschedules a dynamically registered wrapper in the live
// deadline heap: interval > 0 sets a new cadence (the next tick fires
// one new interval from now; an on-demand wrapper starts ticking),
// interval 0 converts the wrapper to on-demand, unscheduling it. The
// call blocks until a tick of a newly on-demand wrapper has drained.
func (s *Server) SetInterval(name string, interval time.Duration) error {
	s.mu.Lock()
	ps := s.pipes[name]
	if ps == nil {
		s.mu.Unlock()
		return errUnknownPipeline
	}
	if !ps.dynamic {
		s.mu.Unlock()
		return errStaticPipeline
	}
	onDemand := interval <= 0
	ps.mu.Lock()
	ps.interval = interval
	ps.onDemand = onDemand
	ps.mu.Unlock()
	entry, sched := ps.entry, s.sched
	switch {
	case onDemand && entry != nil:
		ps.entry = nil
		s.mu.Unlock()
		sched.remove(entry)
	case !onDemand && entry != nil:
		s.mu.Unlock()
		sched.reschedule(entry, interval)
	case !onDemand && entry == nil && s.started && !s.draining && !ps.registering:
		// Was on-demand: start ticking (skipFirst holds for dynamic
		// pipelines, so the first fire is one interval from now).
		s.startLocked(ps)
		s.mu.Unlock()
	default:
		// Before Run, while draining, or while the registration tick is
		// still in flight: the new interval is picked up when the
		// scheduler (or the registration path) schedules the pipeline.
		s.mu.Unlock()
	}
	s.cfg.Logf("server: rescheduled pipeline %q (interval %s)", name, interval)
	return nil
}

// removePipeIf removes the registration only if it still belongs to
// ps: a concurrent DELETE + re-register of the same name must not lose
// the newer pipeline.
func (s *Server) removePipeIf(name string, ps *pipeState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pipes[name] == ps {
		s.removePipeLocked(name)
	}
}

func (s *Server) removePipeLocked(name string) {
	ps := s.pipes[name]
	delete(s.pipes, name)
	s.readPipes.Delete(name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if ps != nil {
		// Watch subscribers observe the hub close and end their streams
		// with an "event: close" frame; webhook dispatchers stop and
		// persist their final cursors.
		ps.deliver.hub.close()
		ps.hooks.close()
	}
}

// startLocked schedules ps on the sharded scheduler. Callers hold
// s.mu; the server must have started and must not be draining.
func (s *Server) startLocked(ps *pipeState) {
	ps.mu.Lock()
	onDemand, interval := ps.onDemand, ps.interval
	ps.mu.Unlock()
	if onDemand || ps.entry != nil || s.sched == nil {
		return
	}
	first := time.Now()
	if ps.skipFirst {
		// The registration path already ticked synchronously; jitter
		// the first scheduled fire so burst-registered fleets spread.
		first = first.Add(interval)
	}
	ps.entry = s.sched.schedule(ps, ps.name, interval, first, ps.skipFirst)
}

// Addr returns the bound listen address once Run has started, or "".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Ready is closed once the HTTP listener is bound and the pipelines
// are ticking.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Run binds the listener, starts the sharded scheduler (shard + worker
// goroutines; pipelines add no goroutines of their own), and serves
// HTTP until ctx is cancelled. On cancellation it stops the scheduler
// (including dynamically registered pipelines), waits for queued and
// in-flight ticks to finish, and drains the HTTP server; it returns
// nil on a clean shutdown.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	sc := newSched(s.cfg.SchedulerShards, s.cfg.SchedulerWorkers, s.cfg.SchedulerQueue, s.cfg.SchedulerJitter)
	defer sc.stopAndDrain()

	s.mu.Lock()
	s.started = true
	s.addr = ln.Addr().String()
	s.sched = sc
	n := len(s.order)
	for _, name := range s.order {
		s.startLocked(s.pipes[name])
	}
	s.mu.Unlock()

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadTimeout:       s.cfg.ReadTimeout,
		ReadHeaderTimeout: s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	close(s.ready)
	s.cfg.Logf("server: listening on %s (%d pipelines)", s.addr, n)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// drain refuses new registrations, stops the scheduler shards, and
	// waits for queued and in-flight ticks.
	drain := func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		// Wake every SSE watch stream so hs.Shutdown is not held open
		// by long-lived subscribers.
		s.drainOnce.Do(func() { close(s.drainCh) })
		sc.stopAndDrain()
		// Stop webhook dispatchers and persist their final cursors, then
		// flush the result log so the next process starts from exactly
		// this state.
		s.readPipes.Range(func(_, v any) bool {
			v.(*pipeState).hooks.close()
			return true
		})
		if s.cfg.ResultStore != nil {
			s.cfg.ResultStore.Sync()
		}
	}

	select {
	case <-ctx.Done():
		s.cfg.Logf("server: shutting down")
		drain()
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-serveErr // Serve has returned (ErrServerClosed)
		return err
	case err := <-serveErr:
		drain()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Handler returns the HTTP handler serving all endpoints; it is usable
// standalone (e.g. under httptest) without Run.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /{name}", s.handleLatest)
	mux.HandleFunc("GET /{name}/history", s.handleHistory)
	// The /v1 routes are registered without a method so that bad
	// methods get a 405 + Allow with the JSON error envelope.
	mux.HandleFunc("/v1/wrappers", s.v1Wrappers)
	mux.HandleFunc("/v1/wrappers/{name}", s.v1Wrapper)
	mux.HandleFunc("/v1/wrappers/{name}/extract", s.v1WrapperExtract)
	mux.HandleFunc("/v1/wrappers/{name}/results", s.v1Results)
	mux.HandleFunc("/v1/wrappers/{name}/watch", s.v1Watch)
	mux.HandleFunc("/v1/wrappers/{name}/webhooks", s.v1Webhooks)
	mux.HandleFunc("/v1/wrappers/{name}/webhooks/{id}", s.v1Webhook)
	mux.HandleFunc("/v1/extract", s.v1Extract)
	mux.HandleFunc("/v1/wrappers/{name}/{rest...}", s.v1NotFound)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) pipe(name string) *pipeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipes[name]
}

// readPipe resolves a pipeline for the read path without touching
// s.mu: one lock-free sync.Map lookup. Every GET handler goes through
// here, so reads stay responsive while registration, rescheduling, or
// shutdown hold the server mutex.
func (s *Server) readPipe(name string) *pipeState {
	if v, ok := s.readPipes.Load(name); ok {
		return v.(*pipeState)
	}
	return nil
}

// wantsJSON reports whether the Accept header prefers JSON over XML.
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	ji := strings.Index(accept, "application/json")
	if ji < 0 {
		return false
	}
	for _, xml := range []string{"application/xml", "text/xml"} {
		if xi := strings.Index(accept, xml); xi >= 0 && xi < ji {
			return false
		}
	}
	return true
}

func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	ps := s.readPipe(r.PathValue("name"))
	if ps == nil {
		http.NotFound(w, r)
		return
	}
	sn := ps.deliver.snapshot(ps.p.Output())
	if sn == nil {
		http.Error(w, "no data yet", http.StatusServiceUnavailable)
		return
	}
	ps.serveSnapshot(w, r, sn, false)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	ps := s.readPipe(r.PathValue("name"))
	if ps == nil {
		http.NotFound(w, r)
		return
	}
	hasN := r.URL.Query().Get("n") != ""
	n := 10
	if hasN {
		q := r.URL.Query().Get("n")
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("query parameter n must be a positive integer, got %q", q), nil)
			return
		}
		n = v
	}
	out := ps.p.Output()
	asJSON := wantsJSON(r)
	if since, ok, valid := parseSince(w, r); !valid {
		return
	} else if ok {
		// Cursor mode: the retained results strictly after `since`,
		// oldest first, each stamped with its delivery version so the
		// client can advance its cursor. Uncached — the cursor space is
		// unbounded.
		if !hasN {
			n = 0
		}
		body, err := sinceBody(out, "history", ps.p.PipeName(), since, n, asJSON)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		setReadRouteHeaders(w, asJSON)
		w.Header().Set("Lixto-Version", strconv.FormatUint(out.Version(), 10))
		w.Write(body)
		return
	}
	body, err := ps.deliver.history(out, histKey{n: n, json: asJSON}, func() ([]byte, error) {
		docs := out.History(n)
		if asJSON {
			return xmlenc.MarshalJSONList(docs)
		}
		root := xmlenc.NewElement("history")
		root.SetAttr("name", ps.p.PipeName())
		root.SetAttr("count", strconv.Itoa(len(docs)))
		root.Append(docs...)
		return xmlenc.MarshalIndentBytes(root), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	setReadRouteHeaders(w, asJSON)
	w.Write(body)
}

// parseSince reads the optional ?since=<version> cursor. The third
// return is false when the parameter was present but malformed (a 400
// envelope has been written).
func parseSince(w http.ResponseWriter, r *http.Request) (uint64, bool, bool) {
	q := r.URL.Query().Get("since")
	if q == "" {
		return 0, false, true
	}
	v, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("query parameter since must be a non-negative integer, got %q", q), nil)
		return 0, false, false
	}
	return v, true, true
}

// sinceBody renders the cursor-mode list shared by GET /{name}/history
// and GET /v1/.../results: each retained result with version > since,
// oldest first, wrapped in a <result version="N"> element (a JSON
// object of the same shape under Accept: application/json).
func sinceBody(out *transform.Collector, rootName, name string, since uint64, n int, asJSON bool) ([]byte, error) {
	docs, vers := out.HistorySince(since, n)
	items := make([]*xmlenc.Node, len(docs))
	for i, doc := range docs {
		item := xmlenc.NewElement("result")
		item.SetAttr("version", strconv.FormatUint(vers[i], 10))
		item.Append(doc)
		items[i] = item
	}
	if asJSON {
		return xmlenc.MarshalJSONList(items)
	}
	root := xmlenc.NewElement(rootName)
	root.SetAttr("name", name)
	root.SetAttr("count", strconv.Itoa(len(items)))
	root.SetAttr("since", strconv.FormatUint(since, 10))
	root.Append(items...)
	return xmlenc.MarshalIndentBytes(root), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// PipelineStatus is one entry of the /statusz report.
type PipelineStatus struct {
	Name          string  `json:"name"`
	IntervalMS    int64   `json:"interval_ms"`
	Ticks         uint64  `json:"ticks"`
	Errors        uint64  `json:"errors"`
	LastError     string  `json:"last_error,omitempty"`
	LastTick      string  `json:"last_tick,omitempty"`
	LastLatencyMS float64 `json:"last_latency_ms"`
	Delivered     int     `json:"delivered"`
	Retained      int     `json:"retained"`
	// Extraction holds the pipeline's wrapper memoization counters
	// (poll-level fingerprint cache, compiled match cache) when the
	// pipeline exposes them.
	Extraction *transform.ExtractionStats `json:"extraction,omitempty"`
}

// ExtractionStatser is optionally implemented by pipelines whose
// wrappers memoize extraction (transform.Engine does); the counters
// appear in /statusz.
type ExtractionStatser interface {
	ExtractionStats() transform.ExtractionStats
}

// Status returns a snapshot of every pipeline's counters, sorted by
// name.
func (s *Server) Status() []PipelineStatus {
	s.mu.Lock()
	names := append([]string{}, s.order...)
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]PipelineStatus, 0, len(names))
	for _, name := range names {
		ps := s.pipe(name)
		if ps == nil {
			continue
		}
		out = append(out, ps.status(name))
	}
	return out
}

// SchedulerStatus returns the scheduler's pool shape and backpressure
// counters. Before Run it reports the configured shape with zero
// counters.
func (s *Server) SchedulerStatus() SchedulerStatus {
	s.mu.Lock()
	sc := s.sched
	s.mu.Unlock()
	if sc == nil {
		return SchedulerStatus{
			Shards:        s.cfg.SchedulerShards,
			Workers:       s.cfg.SchedulerWorkers,
			QueueCapacity: s.cfg.SchedulerQueue,
		}
	}
	return sc.status()
}

// statusReport is the full /statusz payload; shared-cache stats appear
// only when a shared fetch cache is configured.
func (s *Server) statusReport() map[string]any {
	report := map[string]any{
		"pipelines": s.Status(),
		"scheduler": s.SchedulerStatus(),
		"delivery":  s.DeliveryStatus(),
		"webhooks":  s.WebhookStatus(),
	}
	if s.cfg.SharedCache != nil {
		report["shared_cache"] = s.cfg.SharedCache.Stats()
	}
	if s.cfg.MatchCache != nil {
		report["match_cache"] = s.cfg.MatchCache.Report()
	}
	if s.cfg.ResultStore != nil {
		report["persistence"] = s.cfg.ResultStore.Stats()
	}
	return report
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(s.statusReport(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
