// Package server hosts Transformation Server pipelines (Section 5) as
// a long-running concurrent service: each registered pipeline ticks on
// its own goroutine at its own interval, and the latest outputs are
// published over HTTP.
//
// Endpoints:
//
//	GET /{name}            latest document (XML, or JSON when the
//	                       Accept header prefers application/json)
//	GET /{name}/history?n=K  the K most recent documents, newest first
//	GET /healthz           liveness: 200 once the server is ticking
//	GET /statusz           per-pipeline tick counts, errors, latencies
//
// Lifecycle is context-driven: Run blocks until the context is
// cancelled, then stops the tickers, drains in-flight ticks, and shuts
// the HTTP listener down gracefully.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/transform"
	"repro/internal/xmlenc"
)

// Pipeline is one independently scheduled unit of work: a Section 6
// application (or any other information pipe) that can run one
// synchronous activation round and exposes its delivery collector.
type Pipeline interface {
	// PipeName is the stable route name (e.g. "nowplaying").
	PipeName() string
	// Tick runs one synchronous activation round. The returned error
	// is recorded in the pipeline's status; it does not stop the
	// schedule.
	Tick() error
	// Output is the collector whose documents the server publishes.
	Output() *transform.Collector
}

// Config tunes the server.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// DefaultInterval is the tick interval for pipelines registered
	// with interval 0 (default 2s).
	DefaultInterval time.Duration
	// ShutdownGrace bounds how long Run waits for open HTTP
	// connections on shutdown (default 5s).
	ShutdownGrace time.Duration
	// ReadTimeout, WriteTimeout and IdleTimeout are applied to the
	// http.Server (defaults 5s / 10s / 60s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for live
	// profiling of a running server.
	EnablePprof bool
	// Logf, when set, receives server lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = ":8080"
	}
	if out.DefaultInterval <= 0 {
		out.DefaultInterval = 2 * time.Second
	}
	if out.ShutdownGrace <= 0 {
		out.ShutdownGrace = 5 * time.Second
	}
	if out.ReadTimeout <= 0 {
		out.ReadTimeout = 5 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 60 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is the pipeline registry and HTTP front end.
type Server struct {
	cfg Config

	mu      sync.Mutex
	pipes   map[string]*pipeState
	order   []string
	addr    string
	started bool

	ready chan struct{} // closed once the listener is bound
}

// New returns an empty server.
func New(cfg Config) *Server {
	return &Server{
		cfg:   cfg.withDefaults(),
		pipes: map[string]*pipeState{},
		ready: make(chan struct{}),
	}
}

// Register adds a pipeline ticking at the given interval (0 uses the
// configured default). It fails on duplicate or reserved names.
func (s *Server) Register(p Pipeline, interval time.Duration) error {
	name := p.PipeName()
	if name == "" || name == "healthz" || name == "statusz" || name == "debug" {
		return fmt.Errorf("server: invalid pipeline name %q", name)
	}
	if interval <= 0 {
		interval = s.cfg.DefaultInterval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("server: cannot register %q after Run has started", name)
	}
	if _, dup := s.pipes[name]; dup {
		return fmt.Errorf("server: duplicate pipeline %q", name)
	}
	s.pipes[name] = &pipeState{p: p, interval: interval}
	s.order = append(s.order, name)
	return nil
}

// Addr returns the bound listen address once Run has started, or "".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Ready is closed once the HTTP listener is bound and the pipelines
// are ticking.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Run binds the listener, starts one ticking goroutine per pipeline,
// and serves HTTP until ctx is cancelled. On cancellation it stops the
// tickers, waits for any in-flight tick to finish, and drains the HTTP
// server; it returns nil on a clean shutdown.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.started = true
	s.addr = ln.Addr().String()
	states := make([]*pipeState, 0, len(s.order))
	for _, name := range s.order {
		states = append(states, s.pipes[name])
	}
	s.mu.Unlock()

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadTimeout:       s.cfg.ReadTimeout,
		ReadHeaderTimeout: s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}

	tickCtx, stopTicks := context.WithCancel(context.Background())
	defer stopTicks()
	var wg sync.WaitGroup
	for _, ps := range states {
		wg.Add(1)
		go func(ps *pipeState) {
			defer wg.Done()
			ps.run(tickCtx)
		}(ps)
	}
	close(s.ready)
	s.cfg.Logf("server: listening on %s (%d pipelines)", s.addr, len(states))

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		s.cfg.Logf("server: shutting down")
		stopTicks()
		wg.Wait() // drain in-flight ticks
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-serveErr // Serve has returned (ErrServerClosed)
		return err
	case err := <-serveErr:
		stopTicks()
		wg.Wait()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Handler returns the HTTP handler serving all endpoints; it is usable
// standalone (e.g. under httptest) without Run.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /{name}", s.handleLatest)
	mux.HandleFunc("GET /{name}/history", s.handleHistory)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) pipe(name string) *pipeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipes[name]
}

// wantsJSON reports whether the Accept header prefers JSON over XML.
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	ji := strings.Index(accept, "application/json")
	if ji < 0 {
		return false
	}
	for _, xml := range []string{"application/xml", "text/xml"} {
		if xi := strings.Index(accept, xml); xi >= 0 && xi < ji {
			return false
		}
	}
	return true
}

func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	ps := s.pipe(r.PathValue("name"))
	if ps == nil {
		http.NotFound(w, r)
		return
	}
	doc := ps.p.Output().Latest()
	if doc == nil {
		http.Error(w, "no data yet", http.StatusServiceUnavailable)
		return
	}
	asJSON := wantsJSON(r)
	data, err := ps.render(doc, asJSON)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "application/xml")
	}
	w.Write(data)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	ps := s.pipe(r.PathValue("name"))
	if ps == nil {
		http.NotFound(w, r)
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	docs := ps.p.Output().History(n)
	if wantsJSON(r) {
		data, err := xmlenc.MarshalJSONList(docs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	root := xmlenc.NewElement("history")
	root.SetAttr("name", ps.p.PipeName())
	root.SetAttr("count", strconv.Itoa(len(docs)))
	root.Append(docs...)
	w.Header().Set("Content-Type", "application/xml")
	fmt.Fprint(w, xmlenc.MarshalIndent(root))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// PipelineStatus is one entry of the /statusz report.
type PipelineStatus struct {
	Name          string  `json:"name"`
	IntervalMS    int64   `json:"interval_ms"`
	Ticks         uint64  `json:"ticks"`
	Errors        uint64  `json:"errors"`
	LastError     string  `json:"last_error,omitempty"`
	LastTick      string  `json:"last_tick,omitempty"`
	LastLatencyMS float64 `json:"last_latency_ms"`
	Delivered     int     `json:"delivered"`
	Retained      int     `json:"retained"`
	// Extraction holds the pipeline's wrapper memoization counters
	// (poll-level fingerprint cache, compiled match cache) when the
	// pipeline exposes them.
	Extraction *transform.ExtractionStats `json:"extraction,omitempty"`
}

// ExtractionStatser is optionally implemented by pipelines whose
// wrappers memoize extraction (transform.Engine does); the counters
// appear in /statusz.
type ExtractionStatser interface {
	ExtractionStats() transform.ExtractionStats
}

// Status returns a snapshot of every pipeline's counters, sorted by
// name.
func (s *Server) Status() []PipelineStatus {
	s.mu.Lock()
	names := append([]string{}, s.order...)
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]PipelineStatus, 0, len(names))
	for _, name := range names {
		ps := s.pipe(name)
		if ps == nil {
			continue
		}
		out = append(out, ps.status(name))
	}
	return out
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(map[string]any{"pipelines": s.Status()}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
