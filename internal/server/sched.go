package server

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// sched is the sharded timer-heap scheduler: a small fixed set of
// shard goroutines each own a min-heap of next-fire deadlines, and due
// pipelines are dispatched into a bounded worker pool. The goroutine
// count is O(shards + workers) regardless of how many pipelines are
// registered — the per-pipeline ticker goroutines this replaces scaled
// O(pipelines).
//
// Overlap protection: a pipeline whose previous tick is still queued
// or running when its deadline fires is not dispatched again (a tick
// never runs concurrently with itself); the miss is counted as a late
// tick and the deadline advances one interval. A full dispatch queue
// counts a dropped tick and retries on a short backoff instead of
// blocking the shard (backpressure never stalls unrelated pipelines
// on the same shard).
type sched struct {
	workers  int
	jitter   float64
	queue    chan *schedEntry
	shards   []*shard
	stopping chan struct{}

	shardWg  sync.WaitGroup
	workerWg sync.WaitGroup
	stopped  atomic.Bool

	dispatched atomic.Uint64
	late       atomic.Uint64
	dropped    atomic.Uint64
	busy       atomic.Int64
}

// Entry execution states, guarded by the owning shard's mutex.
const (
	entryIdle    = iota // schedulable
	entryQueued         // sitting in the dispatch queue
	entryRunning        // tick in flight on a worker
)

// schedEntry is one scheduled pipeline's heap slot. All mutable fields
// are guarded by sh.mu.
type schedEntry struct {
	ps *pipeState
	sh *shard

	interval time.Duration
	when     time.Time
	idx      int // heap position, -1 when popped
	state    int
	removed  bool
}

// shard owns one deadline heap and the goroutine draining it.
type shard struct {
	s    *sched
	mu   sync.Mutex
	cond *sync.Cond // broadcast when an entry returns to entryIdle
	heap entryHeap
	wake chan struct{}
	rng  uint64 // xorshift state for jitter
}

// newSched starts the shard and worker goroutines immediately.
func newSched(shards, workers, queueCap int, jitter float64) *sched {
	s := &sched{
		workers:  workers,
		jitter:   jitter,
		queue:    make(chan *schedEntry, queueCap),
		stopping: make(chan struct{}),
	}
	for i := 0; i < shards; i++ {
		sh := &shard{s: s, wake: make(chan struct{}, 1), rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
		sh.cond = sync.NewCond(&sh.mu)
		s.shards = append(s.shards, sh)
		s.shardWg.Add(1)
		go sh.loop()
	}
	for i := 0; i < workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// schedule adds a pipeline firing first at the given time, sharded by
// name so reschedules and removals find a stable owner. With
// jitterFirst the first deadline is spread by the configured jitter
// too, so a fleet registered in one burst does not fire its first
// round in lockstep.
func (s *sched) schedule(ps *pipeState, name string, interval time.Duration, first time.Time, jitterFirst bool) *schedEntry {
	sh := s.shards[fnv32(name)%uint32(len(s.shards))]
	e := &schedEntry{ps: ps, sh: sh, interval: interval, when: first, idx: -1}
	sh.mu.Lock()
	if jitterFirst {
		e.when = first.Add(sh.jitterDelta(interval))
	}
	heap.Push(&sh.heap, e)
	sh.mu.Unlock()
	sh.kick()
	return e
}

// reschedule moves a live entry to a new cadence; the next fire is one
// new interval from now.
func (s *sched) reschedule(e *schedEntry, interval time.Duration) {
	sh := e.sh
	sh.mu.Lock()
	e.interval = interval
	if !e.removed {
		e.when = time.Now().Add(interval)
		if e.idx >= 0 {
			heap.Fix(&sh.heap, e.idx)
		} else {
			heap.Push(&sh.heap, e)
		}
	}
	sh.mu.Unlock()
	sh.kick()
}

// remove unschedules an entry and blocks until any queued or in-flight
// tick of it has drained, so callers observe the old
// cancel-and-wait-for-done semantics.
func (s *sched) remove(e *schedEntry) {
	sh := e.sh
	sh.mu.Lock()
	e.removed = true
	if e.idx >= 0 {
		heap.Remove(&sh.heap, e.idx)
	}
	for e.state != entryIdle {
		sh.cond.Wait()
	}
	sh.mu.Unlock()
}

// stopAndDrain stops the shard goroutines, then closes the dispatch
// queue and waits for the workers to finish every already-queued tick.
func (s *sched) stopAndDrain() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	close(s.stopping)
	s.shardWg.Wait() // no sender left
	close(s.queue)
	s.workerWg.Wait()
}

// SchedulerStatus is the /statusz "scheduler" block: pool shape plus
// the backpressure counters.
type SchedulerStatus struct {
	Shards            int     `json:"shards"`
	Workers           int     `json:"workers"`
	Scheduled         int     `json:"scheduled"`
	QueueDepth        int     `json:"queue_depth"`
	QueueCapacity     int     `json:"queue_capacity"`
	BusyWorkers       int     `json:"busy_workers"`
	WorkerUtilization float64 `json:"worker_utilization"`
	Dispatched        uint64  `json:"dispatched"`
	LateTicks         uint64  `json:"late_ticks"`
	DroppedTicks      uint64  `json:"dropped_ticks"`
}

func (s *sched) status() SchedulerStatus {
	scheduled := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		scheduled += len(sh.heap)
		sh.mu.Unlock()
	}
	busy := int(s.busy.Load())
	return SchedulerStatus{
		Shards:            len(s.shards),
		Workers:           s.workers,
		Scheduled:         scheduled,
		QueueDepth:        len(s.queue),
		QueueCapacity:     cap(s.queue),
		BusyWorkers:       busy,
		WorkerUtilization: float64(busy) / float64(s.workers),
		Dispatched:        s.dispatched.Load(),
		LateTicks:         s.late.Load(),
		DroppedTicks:      s.dropped.Load(),
	}
}

func (s *sched) worker() {
	defer s.workerWg.Done()
	for e := range s.queue {
		sh := e.sh
		sh.mu.Lock()
		if e.removed {
			e.state = entryIdle
			sh.cond.Broadcast()
			sh.mu.Unlock()
			continue
		}
		e.state = entryRunning
		sh.mu.Unlock()

		s.busy.Add(1)
		e.ps.tickOnce()
		s.busy.Add(-1)
		s.dispatched.Add(1)

		sh.mu.Lock()
		e.state = entryIdle
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// kick wakes the shard goroutine to re-examine its heap (non-blocking;
// one pending wake is enough).
func (sh *shard) kick() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// loop drains the shard's deadline heap until the scheduler stops.
func (sh *shard) loop() {
	defer sh.s.shardWg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		sh.mu.Lock()
		now := time.Now()
		for len(sh.heap) > 0 && !sh.heap[0].when.After(now) {
			e := sh.heap[0]
			if e.state != entryIdle {
				// Overlap protection: the previous tick is still queued
				// or running, so this deadline is skipped.
				sh.s.late.Add(1)
				e.when = now.Add(sh.jittered(e.interval))
				heap.Fix(&sh.heap, 0)
				continue
			}
			select {
			case sh.s.queue <- e:
				e.state = entryQueued
				e.when = now.Add(sh.jittered(e.interval))
			default:
				// Queue full: record the drop and retry soon rather than
				// blocking the whole shard behind the worker pool.
				sh.s.dropped.Add(1)
				e.when = now.Add(retryDelay(e.interval))
			}
			heap.Fix(&sh.heap, 0)
		}
		wait := time.Hour
		if len(sh.heap) > 0 {
			if wait = time.Until(sh.heap[0].when); wait < 0 {
				wait = 0
			}
		}
		sh.mu.Unlock()

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-sh.s.stopping:
			return
		case <-sh.wake:
		case <-timer.C:
		}
	}
}

// retryDelay is the backoff before re-attempting a dispatch that found
// the queue full: a quarter interval, clamped to [5ms, 1s].
func retryDelay(interval time.Duration) time.Duration {
	d := interval / 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// jittered spreads a deadline by ±jitter·interval, decorrelating
// pipelines registered at the same instant. Called under sh.mu.
func (sh *shard) jittered(d time.Duration) time.Duration {
	return d + sh.jitterDelta(d)
}

// jitterDelta draws the ±jitter·d offset alone. Called under sh.mu.
func (sh *shard) jitterDelta(d time.Duration) time.Duration {
	j := sh.s.jitter
	if j <= 0 || d <= 0 {
		return 0
	}
	sh.rng ^= sh.rng << 13
	sh.rng ^= sh.rng >> 7
	sh.rng ^= sh.rng << 17
	f := float64(sh.rng%(1<<20))/(1<<19) - 1 // [-1, 1)
	return time.Duration(f * j * float64(d))
}

// fnv32 hashes a pipeline name onto its shard.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// entryHeap is a min-heap on the next-fire deadline.
type entryHeap []*schedEntry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].when.Before(h[j].when) }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}

func (h *entryHeap) Push(x any) {
	e := x.(*schedEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
