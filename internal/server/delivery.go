package server

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/transform"
	"repro/internal/xmlenc"
)

// The delivery plane: every pipeline result is encoded exactly once,
// published as an immutable snapshot behind an atomic pointer, and
// served to any number of readers without touching the server-wide
// mutex. A snapshot carries the pre-encoded XML (eager — the XML bytes
// double as the change detector), JSON, gzipped and SSE-framed
// variants (lazy, each built at most once), and per-variant strong
// ETags, so the read path is: one sync.Map lookup, one atomic load,
// one header compare, one Write.
//
// Publication happens at tick-commit time (pipeState.tickOnce) and
// self-heals on read: a handler that observes a collector version
// ahead of the current snapshot republishes under the pipeline's own
// publish mutex. No-op ticks are suppressed before fan-out: the
// poll-level fingerprint cache re-emits the previous *xmlenc.Node when
// no source page changed (pointer equality — the dom.Fingerprint delta
// detection), and a fresh document object with byte-identical encoding
// is caught by comparing the encoded XML.

// gzipMinSize is the smallest body worth compressing; below it the
// gzip header overhead usually wins.
const gzipMinSize = 256

// snapshot is one immutable published result. The version field is the
// only mutable slot: the publisher bumps it forward (under pubMu) when
// the same content is re-delivered, so readers keep fast-pathing.
type snapshot struct {
	doc *xmlenc.Node
	seq uint64 // publish sequence
	// ver is the delivery version at which this content first appeared:
	// the SSE event id, and the cursor subscribers resume from. Unlike
	// the version slot below it never moves.
	ver     uint64
	version atomic.Uint64

	xml    []byte // eager: encoded at publish, reused by every reader
	xmlTag string

	jsonOnce sync.Once
	json     []byte
	jsonTag  string
	jsonErr  error

	gzOnce [2]sync.Once // [xml, json]
	gz     [2][]byte

	sseOnce [2]sync.Once // [xml, json]
	sse     [2][]byte
}

func newSnapshot(doc *xmlenc.Node, version, seq uint64) *snapshot {
	return newSnapshotEnc(nil, doc, version, seq)
}

// newSnapshotEnc is newSnapshot encoding through the pipeline's splice
// encoder when one is present (nil falls back to the stateless
// encoder). The encoder caches encoded byte ranges per frozen subtree,
// so re-encoding a document that shares most of its subtrees with the
// previous snapshot splices the unchanged ranges instead of walking
// them; output — and therefore the ETag — is byte-identical either
// way. Callers must hold the pipeline's publish mutex when enc is
// non-nil (the encoder is single-writer state).
func newSnapshotEnc(enc *xmlenc.Encoder, doc *xmlenc.Node, version, seq uint64) *snapshot {
	sn := &snapshot{doc: doc, seq: seq, ver: version}
	sn.version.Store(version)
	if enc != nil {
		sn.xml = enc.MarshalIndentBytes(doc)
	} else {
		sn.xml = xmlenc.MarshalIndentBytes(doc)
	}
	sn.xmlTag = etagFor(sn.xml, 'x')
	return sn
}

// etagFor derives a strong ETag from the encoded bytes: an FNV-1a
// fingerprint plus a representation marker (XML and JSON variants of
// one document must never share an ETag).
func etagFor(b []byte, kind byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("\"%016x-%c\"", h.Sum64(), kind)
}

// variantJSON returns the JSON encoding, built on first use.
func (sn *snapshot) variantJSON() ([]byte, string, error) {
	sn.jsonOnce.Do(func() {
		data, err := xmlenc.MarshalJSONIndent(sn.doc)
		if err != nil {
			sn.jsonErr = err
			return
		}
		sn.json = data
		sn.jsonTag = etagFor(data, 'j')
	})
	return sn.json, sn.jsonTag, sn.jsonErr
}

// gzipped returns the precompressed variant, or nil when compression
// does not pay (small or incompressible bodies are served identity).
func (sn *snapshot) gzipped(asJSON bool) []byte {
	i := 0
	if asJSON {
		i = 1
	}
	sn.gzOnce[i].Do(func() {
		var body []byte
		if asJSON {
			body, _, _ = sn.variantJSON()
		} else {
			body = sn.xml
		}
		if len(body) < gzipMinSize {
			return
		}
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		if err != nil {
			return
		}
		if _, err := zw.Write(body); err != nil {
			return
		}
		if err := zw.Close(); err != nil {
			return
		}
		if buf.Len() < len(body) {
			sn.gz[i] = buf.Bytes()
		}
	})
	return sn.gz[i]
}

// sseFrame returns the complete SSE event bytes for this snapshot —
// "event: result", the delivery version as the event id (the cursor a
// reconnecting subscriber hands back via Last-Event-ID), and the
// encoded document as data lines. Built once per representation and
// written verbatim to every subscriber.
func (sn *snapshot) sseFrame(asJSON bool) []byte {
	i := 0
	if asJSON {
		i = 1
	}
	sn.sseOnce[i].Do(func() {
		payload := sn.xml
		if asJSON {
			body, _, err := sn.variantJSON()
			if err != nil {
				body = []byte(`{"error":"encoding failure"}`)
			}
			payload = body
		}
		sn.sse[i] = sseFrameFor(payload, sn.ver)
	})
	return sn.sse[i]
}

// sseFrameFor frames one payload as a complete "event: result" SSE event
// with the delivery version as the id. Shared by the cached snapshot
// frames and the ad-hoc frames built during Last-Event-ID replay.
func sseFrameFor(payload []byte, ver uint64) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: result\nid: %d\n", ver)
	for _, line := range strings.Split(strings.TrimRight(string(payload), "\n"), "\n") {
		b.WriteString("data: ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.Bytes()
}

// ---------------------------------------------------------------------

// histKey distinguishes the cached encodings of the history list: the
// requested depth, the representation, and which route built it (the
// legacy /{name}/history root element differs from /v1 .../results).
type histKey struct {
	n    int
	json bool
	v1   bool
}

// maxHistCacheEntries bounds the per-pipeline history cache; clients
// choose n freely, so past the bound requests are built uncached.
const maxHistCacheEntries = 32

// delivery is the per-pipeline delivery state: the current snapshot,
// the publish lock (serializing writers only — readers never take it
// in steady state), the watch hub, and the read-path counters.
type delivery struct {
	cur   atomic.Pointer[snapshot]
	pubMu sync.Mutex
	seq   atomic.Uint64 // snapshots published (fan-outs + encodes)

	hub watchHub

	// persist, when set, is the pipeline's WAL attachment (persist.go):
	// publish drains its journal queue so every delivery reaches the
	// result log, reusing the just-encoded snapshot bytes. hooks, when
	// set, is the pipeline's outbound webhook set; publish nudges its
	// dispatchers after the log advances.
	persist *pipePersist
	hooks   *hookSet

	suppressed atomic.Uint64 // no-op ticks caught before fan-out
	etagHits   atomic.Uint64 // conditional GETs answered 304
	etagMisses atomic.Uint64 // conditional GETs that had to send the body

	// enc is the pipeline's splice encoder (see xmlenc.Encoder), built
	// on first publish and used only under pubMu. noSplice (set at
	// initPipe from Config.NoIncrementalOutput) keeps it nil, pinning
	// the stateless encode path.
	enc      *xmlenc.Encoder
	noSplice bool

	histMu      sync.Mutex
	histVersion uint64
	hist        map[histKey][]byte
}

// snapshot returns the current snapshot for out, publishing a new one
// if the collector has delivered since. The steady-state path is
// lock-free: one atomic pointer load plus one atomic version compare.
// Pending journal entries force the publish path so a delivery is
// durably logged before its HTTP acknowledgement is written.
func (d *delivery) snapshot(out *transform.Collector) *snapshot {
	if cur := d.cur.Load(); cur != nil && cur.version.Load() == out.Version() &&
		(d.persist == nil || d.persist.idle()) {
		return cur
	}
	return d.publish(out)
}

// publish encodes and swaps in a new snapshot under the pipeline's
// publish mutex, then fans it out to the watch hub. Re-deliveries of
// unchanged content (same document pointer, or byte-identical
// encoding) bump the current snapshot's version instead: no re-encode,
// no fan-out, one suppressed no-op tick counted. Either way the WAL
// journal drains before returning, so the caller's delivery is on disk
// (as a snapshot or a version-only no-op record) when it is
// acknowledged.
func (d *delivery) publish(out *transform.Collector) *snapshot {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	// Read the version before the document: if a delivery races in
	// between, the recorded version is behind and the next read
	// republishes — stale is recoverable, "fresher than recorded" is
	// not.
	v := out.Version()
	cur := d.cur.Load()
	sn := cur
	doc := out.Latest()
	switch {
	case cur != nil && cur.version.Load() >= v:
		// Already current; fall through to the journal drain only.
	case doc == nil, v == 0:
		// No delivery yet — or a reader raced the very first one and
		// loaded the version before the collector committed it (a
		// document existing at all implies version >= 1). Publishing
		// here would broadcast an SSE frame with id 0; the delivering
		// tick's own snapshot call follows with the real version.
	case cur != nil && cur.doc == doc:
		// The poll-level fingerprint cache re-emitted the previous
		// document: nothing changed upstream.
		cur.version.Store(v)
		d.suppressed.Add(1)
	default:
		if d.enc == nil && !d.noSplice {
			d.enc = xmlenc.NewEncoder()
		}
		fresh := newSnapshotEnc(d.enc, doc, v, d.seq.Load()+1)
		if cur != nil && bytes.Equal(fresh.xml, cur.xml) {
			// Fresh document object, identical content.
			cur.version.Store(v)
			d.suppressed.Add(1)
		} else {
			d.seq.Add(1)
			d.cur.Store(fresh)
			d.hub.broadcast(fresh)
			sn = fresh
		}
	}
	if d.persist != nil && !d.persist.idle() {
		d.persist.drain(sn)
		if d.hooks != nil {
			d.hooks.notify()
		}
	} else if d.hooks != nil && sn != cur {
		d.hooks.notify()
	}
	return sn
}

// splicedBytes reports the cumulative snapshot bytes this pipeline's
// splice encoder reused from its cache instead of re-encoding (0 when
// splicing is disabled or nothing has been published). Takes the
// publish mutex briefly; called from the status path only.
func (d *delivery) splicedBytes() uint64 {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	if d.enc == nil {
		return 0
	}
	return d.enc.SplicedBytes()
}

// history serves the encoded history list from the per-pipeline cache,
// rebuilding via build only when the collector has delivered since the
// cached encoding (or the key is not cached yet).
func (d *delivery) history(out *transform.Collector, key histKey, build func() ([]byte, error)) ([]byte, error) {
	v := out.Version()
	d.histMu.Lock()
	if d.histVersion != v {
		d.histVersion = v
		d.hist = nil
	}
	if b, ok := d.hist[key]; ok {
		d.histMu.Unlock()
		return b, nil
	}
	d.histMu.Unlock()
	b, err := build()
	if err != nil {
		return nil, err
	}
	d.histMu.Lock()
	if d.histVersion == v && len(d.hist) < maxHistCacheEntries {
		if d.hist == nil {
			d.hist = map[histKey][]byte{}
		}
		d.hist[key] = b
	}
	d.histMu.Unlock()
	return b, nil
}

// DeliveryStatus aggregates the delivery-plane counters across all
// pipelines: encode-once snapshots, suppressed no-op ticks, watch
// fan-out, and conditional-GET hit rates. Appears as the "delivery"
// block on /statusz and GET /v1/wrappers.
type DeliveryStatus struct {
	// Snapshots counts published (encoded + fanned-out) results.
	Snapshots uint64 `json:"snapshots"`
	// SuppressedNoopTicks counts re-deliveries of unchanged content
	// caught before encoding or fan-out.
	SuppressedNoopTicks uint64 `json:"suppressed_noop_ticks"`
	// Broadcasts counts snapshots offered to the watch hubs;
	// Subscribers is the current SSE subscriber count and
	// SubscribersTotal the lifetime number of subscriptions.
	Broadcasts       uint64 `json:"broadcasts"`
	Subscribers      int    `json:"subscribers"`
	SubscribersTotal uint64 `json:"subscribers_total"`
	// DroppedSlow counts events dropped on full subscriber queues (the
	// slow-client policy: drop, count, never block the tick path).
	DroppedSlow uint64 `json:"dropped_slow"`
	// EtagHits counts conditional GETs answered 304; EtagMisses counts
	// conditional GETs whose ETag no longer matched.
	EtagHits   uint64 `json:"etag_hits"`
	EtagMisses uint64 `json:"etag_misses"`
}

// add accumulates one pipeline's delivery counters.
func (ds *DeliveryStatus) add(d *delivery) {
	ds.Snapshots += d.seq.Load()
	ds.SuppressedNoopTicks += d.suppressed.Load()
	ds.EtagHits += d.etagHits.Load()
	ds.EtagMisses += d.etagMisses.Load()
	subs, total, broadcasts, dropped := d.hub.stats()
	ds.Subscribers += subs
	ds.SubscribersTotal += total
	ds.Broadcasts += broadcasts
	ds.DroppedSlow += dropped
}

// DeliveryStatus returns the delivery-plane counters summed over the
// currently registered pipelines.
func (s *Server) DeliveryStatus() DeliveryStatus {
	var ds DeliveryStatus
	s.readPipes.Range(func(_, v any) bool {
		ds.add(&v.(*pipeState).deliver)
		return true
	})
	return ds
}

// ---------------------------------------------------------------------
// Serving.

// etagMatch reports whether any member of an If-None-Match header
// matches the strong etag (weak validators compare equal for GET).
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request allows a gzip response.
func acceptsGzip(r *http.Request) bool {
	ae := r.Header.Get("Accept-Encoding")
	for _, part := range strings.Split(ae, ",") {
		part = strings.TrimSpace(part)
		if enc, q, ok := strings.Cut(part, ";"); ok {
			if strings.TrimSpace(enc) == "gzip" {
				return strings.TrimSpace(q) != "q=0"
			}
		} else if part == "gzip" {
			return true
		}
	}
	return false
}

// setReadRouteHeaders emits the content-negotiation headers shared by
// every read route: caches must key on Accept (XML vs JSON) and
// Accept-Encoding (identity vs gzip), and the charset is explicit so
// proxies never re-guess the encoding.
func setReadRouteHeaders(w http.ResponseWriter, asJSON bool) {
	h := w.Header()
	h.Add("Vary", "Accept")
	h.Add("Vary", "Accept-Encoding")
	if asJSON {
		h.Set("Content-Type", "application/json; charset=utf-8")
	} else {
		h.Set("Content-Type", "application/xml; charset=utf-8")
	}
}

// serveSnapshot writes one snapshot: content negotiation, strong-ETag
// conditional GET, and the precompressed body when the client accepts
// gzip. It never takes a lock. envelope selects the /v1 JSON error
// envelope for encoding failures.
func (ps *pipeState) serveSnapshot(w http.ResponseWriter, r *http.Request, sn *snapshot, envelope bool) {
	asJSON := wantsJSON(r)
	var body []byte
	var etag string
	if asJSON {
		var err error
		body, etag, err = sn.variantJSON()
		if err != nil {
			if envelope {
				writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
	} else {
		body, etag = sn.xml, sn.xmlTag
	}
	h := w.Header()
	h.Add("Vary", "Accept")
	h.Add("Vary", "Accept-Encoding")
	h.Set("ETag", etag)
	// The delivery version doubles as the subscriber cursor: clients
	// seed ?since= and SSE Last-Event-ID from it.
	h.Set("Lixto-Version", strconv.FormatUint(sn.version.Load(), 10))
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if etagMatch(inm, etag) {
			ps.deliver.etagHits.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		ps.deliver.etagMisses.Add(1)
	}
	if asJSON {
		h.Set("Content-Type", "application/json; charset=utf-8")
	} else {
		h.Set("Content-Type", "application/xml; charset=utf-8")
	}
	if acceptsGzip(r) {
		if gz := sn.gzipped(asJSON); gz != nil {
			h.Set("Content-Encoding", "gzip")
			h.Set("Content-Length", strconv.Itoa(len(gz)))
			w.Write(gz)
			return
		}
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}
