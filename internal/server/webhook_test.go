package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// jsonUnmarshal decodes a response body string.
func jsonUnmarshal(s string, v any) error { return json.Unmarshal([]byte(s), v) }

// hookSink is an in-test webhook receiver: it records every POST (or
// rejects it, while failing is set) so tests can assert ordering,
// headers, and at-least-once coverage.
type hookSink struct {
	mu       sync.Mutex
	failing  bool
	failCode int
	receipts []hookReceipt
	ts       *httptest.Server
}

type hookReceipt struct {
	wrapper string
	webhook string
	version uint64
	body    string
	sig     string
}

func newHookSink(t *testing.T) *hookSink {
	t.Helper()
	sink := &hookSink{failCode: http.StatusServiceUnavailable}
	sink.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		v, _ := strconv.ParseUint(r.Header.Get("Lixto-Version"), 10, 64)
		sink.mu.Lock()
		defer sink.mu.Unlock()
		if sink.failing {
			w.WriteHeader(sink.failCode)
			return
		}
		sink.receipts = append(sink.receipts, hookReceipt{
			wrapper: r.Header.Get("Lixto-Wrapper"),
			webhook: r.Header.Get("Lixto-Webhook"),
			version: v,
			body:    string(body),
			sig:     r.Header.Get("Lixto-Signature"),
		})
	}))
	t.Cleanup(sink.ts.Close)
	return sink
}

func (h *hookSink) setFailing(on bool) {
	h.mu.Lock()
	h.failing = on
	h.mu.Unlock()
}

func (h *hookSink) snapshot() []hookReceipt {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]hookReceipt(nil), h.receipts...)
}

// waitFor polls until the sink's receipts satisfy ok.
func (h *hookSink) waitFor(t *testing.T, what string, ok func([]hookReceipt) bool) []hookReceipt {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := h.snapshot()
		if ok(got) {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink never satisfied %q: %+v", what, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fastHookConfig keeps retry timing test-scale.
func fastHookConfig() Config {
	return Config{
		WebhookBackoffMin:  time.Millisecond,
		WebhookBackoffMax:  5 * time.Millisecond,
		WebhookCooldown:    20 * time.Millisecond,
		WebhookMaxAttempts: 3,
	}
}

// TestWebhookDelivery pins the happy path: registering an endpoint
// with since=0 replays the retained history, each new publish is
// POSTed exactly once with the identifying headers, versions arrive in
// order, and the cursor tracks the last accepted version.
func TestWebhookDelivery(t *testing.T) {
	sink := newHookSink(t)
	s := New(Config{})
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		deliver(t, s, p)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": sink.ts.URL, "since": 0})
	if code != 201 {
		t.Fatalf("create webhook: %d %s", code, body)
	}
	var created hookInfo
	if err := jsonUnmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "h1" || created.URL != sink.ts.URL {
		t.Fatalf("created: %+v", created)
	}

	got := sink.waitFor(t, "3 replayed deliveries", func(rs []hookReceipt) bool { return len(rs) >= 3 })
	for i, r := range got[:3] {
		if r.version != uint64(i+1) || r.wrapper != "x" || r.webhook != "h1" {
			t.Fatalf("receipt %d: %+v", i, r)
		}
		if !strings.Contains(r.body, fmt.Sprintf(`n="%d"`, i+1)) {
			t.Fatalf("receipt %d body: %q", i, r.body)
		}
	}

	// A new publish fans out to the endpoint.
	deliver(t, s, p)
	sink.waitFor(t, "live delivery of version 4", func(rs []hookReceipt) bool {
		return len(rs) >= 4 && rs[len(rs)-1].version == 4
	})

	// The listing reports the advanced cursor and the delivery count.
	var listing struct {
		Name     string     `json:"name"`
		Webhooks []hookInfo `json:"webhooks"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body, _ = do(t, "GET", ts.URL+"/v1/wrappers/x/webhooks", nil)
		if err := jsonUnmarshal(body, &listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Webhooks) == 1 && listing.Webhooks[0].Cursor == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor never advanced to 4: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w := listing.Webhooks[0]; w.Deliveries != 4 || w.Failures != 0 {
		t.Fatalf("webhook stats: %+v", w)
	}

	// DELETE retires the endpoint: no further deliveries.
	code, _, _ = do(t, "DELETE", ts.URL+"/v1/wrappers/x/webhooks/h1", nil)
	if code != 204 {
		t.Fatalf("delete webhook: %d", code)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/v1/wrappers/x/webhooks/h1", nil); code != 404 {
		t.Fatalf("deleted webhook still listed: %d", code)
	}
	before := len(sink.snapshot())
	deliver(t, s, p)
	time.Sleep(50 * time.Millisecond)
	if after := len(sink.snapshot()); after != before {
		t.Fatalf("retired endpoint still delivered: %d -> %d", before, after)
	}
}

// TestWebhookSinceAbsent: without "since" the cursor starts at the
// current version — history is not replayed, only new results flow.
func TestWebhookSinceAbsent(t *testing.T) {
	sink := newHookSink(t)
	s := New(Config{})
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s, p)
	deliver(t, s, p)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": sink.ts.URL}); code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	time.Sleep(50 * time.Millisecond)
	if rs := sink.snapshot(); len(rs) != 0 {
		t.Fatalf("history replayed without since: %+v", rs)
	}
	deliver(t, s, p)
	got := sink.waitFor(t, "only the new version", func(rs []hookReceipt) bool { return len(rs) >= 1 })
	if got[0].version != 3 {
		t.Fatalf("first delivery version = %d, want 3", got[0].version)
	}
}

// TestWebhookValidation pins the route's error envelopes.
func TestWebhookValidation(t *testing.T) {
	s := New(Config{MaxWebhooksPerWrapper: 1})
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, bad := range []string{"", "not-a-url", "ftp://host/x", "http://"} {
		code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks", map[string]any{"url": bad})
		if code != 400 || envelope(t, body).Kind != "bad_request" {
			t.Fatalf("url=%q: %d %s", bad, code, body)
		}
	}
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/nosuch/webhooks", map[string]any{"url": "http://h/x"})
	if code != 404 || envelope(t, body).Kind != "not_found" {
		t.Fatalf("unknown wrapper: %d %s", code, body)
	}
	code, _, hdr := do(t, "PUT", ts.URL+"/v1/wrappers/x/webhooks", nil)
	if code != 405 || hdr.Get("Allow") != "GET, POST" {
		t.Fatalf("405: %d Allow=%q", code, hdr.Get("Allow"))
	}
	code, _, hdr = do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks/h1", nil)
	if code != 405 || hdr.Get("Allow") != "GET, DELETE" {
		t.Fatalf("405 item: %d Allow=%q", code, hdr.Get("Allow"))
	}
	// The per-wrapper cap.
	if code, _, _ = do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks", map[string]any{"url": "http://h/x"}); code != 201 {
		t.Fatalf("first webhook: %d", code)
	}
	code, body, _ = do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks", map[string]any{"url": "http://h/y"})
	if code != 422 || !strings.Contains(body, "limit") {
		t.Fatalf("over cap: %d %s", code, body)
	}
}

// TestWebhookRetryBackoff: a failing endpoint is retried with backoff
// until it accepts; the cursor never advances past an unacknowledged
// version, and the failure/retry counters record the attempts.
func TestWebhookRetryBackoff(t *testing.T) {
	sink := newHookSink(t)
	sink.setFailing(true)
	s := New(fastHookConfig())
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s, p)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": sink.ts.URL, "since": 0})
	if code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	// Give it a few failed attempts, then recover the sink.
	waitInfo(t, ts.URL+"/v1/wrappers/x/webhooks/h1", "failures recorded", func(w hookInfo) bool {
		return w.Failures >= 2 && w.Cursor == 0
	})
	sink.setFailing(false)
	got := sink.waitFor(t, "eventual delivery", func(rs []hookReceipt) bool { return len(rs) >= 1 })
	if got[0].version != 1 {
		t.Fatalf("delivered version = %d, want 1", got[0].version)
	}
	w := waitInfo(t, ts.URL+"/v1/wrappers/x/webhooks/h1", "cursor advanced", func(w hookInfo) bool {
		return w.Cursor == 1
	})
	if w.Deliveries != 1 || w.Failures < 2 || w.Retries < 1 {
		t.Fatalf("counters after recovery: %+v", w)
	}
	if w.LastError != "" && !strings.Contains(w.LastError, "503") {
		t.Fatalf("last error: %q", w.LastError)
	}
}

// TestWebhookBreaker: a run of failures past the attempt cap opens the
// circuit breaker (visible in the endpoint state and the aggregate
// stats); after the cooldown the half-open probe redelivers and the
// breaker closes. No version is ever skipped.
func TestWebhookBreaker(t *testing.T) {
	sink := newHookSink(t)
	sink.setFailing(true)
	s := New(fastHookConfig())
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s, p)
	deliver(t, s, p)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": sink.ts.URL, "since": 0}); code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	waitInfo(t, ts.URL+"/v1/wrappers/x/webhooks/h1", "breaker open", func(w hookInfo) bool {
		return w.State == "open" && w.BreakerOpens >= 1
	})
	// The aggregate block counts the open breaker.
	var status struct {
		Webhooks WebhookStatus `json:"webhooks"`
	}
	_, body, _ := do(t, "GET", ts.URL+"/statusz", nil)
	if err := jsonUnmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Webhooks.Endpoints != 1 || status.Webhooks.BreakerOpen != 1 || status.Webhooks.BreakerOpens < 1 {
		t.Fatalf("aggregate webhook stats: %+v", status.Webhooks)
	}

	// Recovery: the half-open probe goes through and the backlog drains
	// in order — both versions, nothing skipped.
	sink.setFailing(false)
	got := sink.waitFor(t, "backlog drained", func(rs []hookReceipt) bool { return len(rs) >= 2 })
	if got[0].version != 1 || got[1].version != 2 {
		t.Fatalf("post-breaker order: %+v", got)
	}
	waitInfo(t, ts.URL+"/v1/wrappers/x/webhooks/h1", "breaker closed", func(w hookInfo) bool {
		return w.State != "open" && w.Cursor == 2
	})
}

// TestWebhookCursorRestart: with a result store, endpoint
// registrations and their cursors survive a restart — the restored
// dispatcher resumes after the last acknowledged version instead of
// replaying the whole log.
func TestWebhookCursorRestart(t *testing.T) {
	sink := newHookSink(t)
	dir := t.TempDir()
	store := openStore(t, dir)
	cfg := fastHookConfig()
	cfg.ResultStore = store
	s1 := New(cfg)
	p1 := newFakePipe("x", 0)
	if err := s1.Register(p1, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s1, p1)
	deliver(t, s1, p1)
	ts1 := httptest.NewServer(s1.Handler())
	if code, body, _ := do(t, "POST", ts1.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": sink.ts.URL, "since": 0}); code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	sink.waitFor(t, "both versions delivered", func(rs []hookReceipt) bool { return len(rs) >= 2 })
	ts1.Close()
	// Shutdown persists the final cursors (the drain path does the same
	// through removePipeLocked).
	s1.pipe("x").hooks.close()
	store.Close()

	store2 := openStore(t, dir)
	defer store2.Close()
	cfg2 := fastHookConfig()
	cfg2.ResultStore = store2
	s2 := New(cfg2)
	p2 := newFakePipe("x", 0)
	if err := s2.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	w := waitInfo(t, ts2.URL+"/v1/wrappers/x/webhooks/h1", "restored endpoint", func(w hookInfo) bool {
		return w.URL == sink.ts.URL
	})
	if w.Cursor != 2 {
		t.Fatalf("restored cursor = %d, want 2", w.Cursor)
	}
	// Nothing is redelivered; the next publish picks up at version 3.
	before := len(sink.snapshot())
	deliver(t, s2, p2)
	got := sink.waitFor(t, "post-restart delivery", func(rs []hookReceipt) bool { return len(rs) > before })
	if got[len(got)-1].version != 3 {
		t.Fatalf("post-restart version = %d, want 3", got[len(got)-1].version)
	}
	if len(got) != before+1 {
		t.Fatalf("restart redelivered acknowledged versions: %+v", got)
	}
}

// TestStatuszWebhookShape pins the "webhooks" stats block keys on
// /statusz and GET /v1/wrappers, and the per-wrapper endpoint count in
// the listing.
func TestStatuszWebhookShape(t *testing.T) {
	sink := newHookSink(t)
	s := New(Config{})
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s, p)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": sink.ts.URL, "since": 0}); code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	sink.waitFor(t, "delivery", func(rs []hookReceipt) bool { return len(rs) >= 1 })

	for _, url := range []string{ts.URL + "/statusz", ts.URL + "/v1/wrappers"} {
		code, body, _ := do(t, "GET", url, nil)
		if code != 200 {
			t.Fatalf("%s = %d", url, code)
		}
		for _, key := range []string{`"webhooks"`, `"endpoints"`, `"breaker_open"`,
			`"deliveries"`, `"failures"`, `"retries"`, `"breaker_opens"`} {
			if !strings.Contains(body, key) {
				t.Errorf("%s missing %s", url, key)
			}
		}
		if !strings.Contains(body, `"endpoints": 1`) {
			t.Errorf("%s does not count the endpoint:\n%s", url, body)
		}
	}
	// The wrapper listing carries the per-wrapper endpoint count.
	_, body, _ := do(t, "GET", ts.URL+"/v1/wrappers", nil)
	var listing struct {
		Wrappers []struct {
			Name     string `json:"name"`
			Webhooks int    `json:"webhooks"`
		} `json:"wrappers"`
	}
	if err := jsonUnmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Wrappers) != 1 || listing.Wrappers[0].Webhooks != 1 {
		t.Fatalf("listing webhook count: %s", body)
	}
}

// TestBackoffDelayBounds pins the backoff curve: exponential from min,
// capped at max, jittered within [d/2, d].
func TestBackoffDelayBounds(t *testing.T) {
	min, max := 100*time.Millisecond, time.Second
	for attempt := 1; attempt <= 12; attempt++ {
		want := min << (attempt - 1)
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 20; i++ {
			d := backoffDelay(min, max, attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// waitInfo polls one webhook's status endpoint until ok is satisfied.
func waitInfo(t *testing.T, url, what string, ok func(hookInfo) bool) hookInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body, _ := do(t, "GET", url, nil)
		var w hookInfo
		if err := jsonUnmarshal(body, &w); err == nil && ok(w) {
			return w
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook never reached %q: %s", what, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
