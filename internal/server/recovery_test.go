package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/resultlog"
)

// The crash-recovery differential test: a child server process (this
// test binary re-executed) is SIGKILLed mid-fleet — no flush, no
// shutdown hook — restarted over the same data directory, and must
// serve the latest result, ETag, and history byte-identically, resume
// webhook cursors, and continue the version sequence with no lost
// deliveries.

// recoveryChildEnv points the re-executed child at its data directory.
const recoveryChildEnv = "LIXTO_RECOVERY_DIR"

// TestRecoveryChild is the child half: it only runs when re-executed
// by TestCrashRecoveryDifferential with the environment set. It serves
// until killed.
func TestRecoveryChild(t *testing.T) {
	dir := os.Getenv(recoveryChildEnv)
	if dir == "" {
		t.Skip("helper process for TestCrashRecoveryDifferential")
	}
	store, err := resultlog.Open(dir, resultlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Addr:                 "127.0.0.1:0",
		AllowDynamic:         true,
		ResultStore:          store,
		MaxCompilesPerMinute: -1,
		Logf:                 func(string, ...any) {},
	})
	if _, err := s.Restore(); err != nil {
		t.Fatal(err)
	}
	go s.Run(context.Background())
	select {
	case <-s.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("child never became ready")
	}
	// Publish the address atomically; the parent polls for this file.
	tmp := filepath.Join(dir, ".addr.tmp")
	if err := os.WriteFile(tmp, []byte(s.Addr()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr.txt")); err != nil {
		t.Fatal(err)
	}
	select {} // run until SIGKILLed by the parent
}

// recoveryChild manages one child server process.
type recoveryChild struct {
	cmd  *exec.Cmd
	base string
	out  strings.Builder
}

func startRecoveryChild(t *testing.T, dir string) *recoveryChild {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "addr.txt"))
	c := &recoveryChild{}
	c.cmd = exec.Command(exe, "-test.run=TestRecoveryChild$")
	c.cmd.Env = append(os.Environ(), recoveryChildEnv+"="+dir)
	c.cmd.Stdout = &c.out
	c.cmd.Stderr = &c.out
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.kill() })

	deadline := time.Now().Add(15 * time.Second)
	for {
		if addr, err := os.ReadFile(filepath.Join(dir, "addr.txt")); err == nil {
			c.base = "http://" + string(addr)
			if resp, err := http.Get(c.base + "/healthz"); err == nil {
				resp.Body.Close()
				return c
			}
		}
		if c.cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("child server never came up; output:\n%s", c.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the child — no signal handler, no flush, no shutdown.
func (c *recoveryChild) kill() {
	if c.cmd.Process != nil && c.cmd.ProcessState == nil {
		c.cmd.Process.Kill()
		c.cmd.Wait()
	}
}

func TestCrashRecoveryDifferential(t *testing.T) {
	if os.Getenv(recoveryChildEnv) != "" {
		t.Skip("child process")
	}
	dir := t.TempDir()
	sink := newHookSink(t)

	// --- Before the crash: a small fleet with live traffic. ---
	child := startRecoveryChild(t, dir)
	for _, name := range []string{"crash", "fleet2"} {
		code, body, _ := do(t, "POST", child.base+"/v1/wrappers",
			map[string]any{"name": name, "program": v1Wrapper, "html": v1Page, "auxiliary": []string{"page"}})
		if code != 201 {
			t.Fatalf("create %s: %d %s\nchild output:\n%s", name, code, body, child.out.String())
		}
	}
	if code, body, _ := do(t, "POST", child.base+"/v1/wrappers/crash/webhooks",
		map[string]any{"url": sink.ts.URL, "since": 0}); code != 201 {
		t.Fatalf("create webhook: %d %s", code, body)
	}
	// Three more extractions per wrapper: versions 2..4 (registration
	// delivered version 1). Every acknowledged response is durable.
	for i := 2; i <= 4; i++ {
		page := strings.ReplaceAll(v1Page, "Foundations of Databases", fmt.Sprintf("Edition %d", i))
		for _, name := range []string{"crash", "fleet2"} {
			code, body, hdr := do(t, "POST", child.base+"/v1/wrappers/"+name+"/extract",
				map[string]any{"html": page})
			if code != 200 {
				t.Fatalf("extract %s #%d: %d %s", name, i, code, body)
			}
			if got := hdr.Get("Lixto-Version"); got != fmt.Sprint(i) {
				t.Fatalf("extract %s #%d: Lixto-Version %q", name, i, got)
			}
		}
	}
	// Capture the observable read state. These reads also guarantee the
	// journal is drained to the WAL before we pull the plug.
	type wrapperState struct{ latest, etag, history, results string }
	capture := func(base string) map[string]wrapperState {
		states := map[string]wrapperState{}
		for _, name := range []string{"crash", "fleet2"} {
			code, latest, hdr := do(t, "GET", base+"/"+name, nil)
			if code != 200 {
				t.Fatalf("GET /%s: %d", name, code)
			}
			_, history, _ := do(t, "GET", base+"/"+name+"/history?since=0", nil)
			_, results, _ := do(t, "GET", base+"/v1/wrappers/"+name+"/results?since=0", nil)
			states[name] = wrapperState{latest: latest, etag: hdr.Get("ETag"), history: history, results: results}
		}
		return states
	}
	before := capture(child.base)
	// All four versions must reach the sink, and the durable cursor must
	// record them, before the crash (the acknowledged-state boundary).
	sink.waitFor(t, "pre-crash deliveries", func(rs []hookReceipt) bool { return len(rs) >= 4 })
	hooksPath := filepath.Join(dir, "crash", "webhooks.json")
	waitCursorFile(t, hooksPath, 4)

	// --- The crash. ---
	child.kill()

	// --- After restart: byte-identical reads, resumed cursors. ---
	child2 := startRecoveryChild(t, dir)
	after := capture(child2.base)
	for _, name := range []string{"crash", "fleet2"} {
		b, a := before[name], after[name]
		if a.latest != b.latest {
			t.Errorf("%s latest diverged:\n--- before ---\n%s\n--- after ---\n%s", name, b.latest, a.latest)
		}
		if a.etag != b.etag {
			t.Errorf("%s ETag diverged: %q -> %q", name, b.etag, a.etag)
		}
		if a.history != b.history {
			t.Errorf("%s history diverged:\n--- before ---\n%s\n--- after ---\n%s", name, b.history, a.history)
		}
		if a.results != b.results {
			t.Errorf("%s results diverged:\n--- before ---\n%s\n--- after ---\n%s", name, b.results, a.results)
		}
		// The pre-crash ETag still answers 304 on the restarted server.
		if code, _, _ := do(t, "GET", child2.base+"/"+name, nil, "If-None-Match", b.etag); code != 304 {
			t.Errorf("%s conditional GET with pre-crash ETag = %d, want 304", name, code)
		}
	}
	w := waitInfo(t, child2.base+"/v1/wrappers/crash/webhooks/h1", "restored webhook", func(w hookInfo) bool {
		return w.Cursor >= 4
	})
	if w.URL != sink.ts.URL {
		t.Fatalf("restored webhook url: %+v", w)
	}

	// New work continues the version sequence and flows to the endpoint:
	// at-least-once, monotonic cursor, no version ever skipped.
	code, _, hdr := do(t, "POST", child2.base+"/v1/wrappers/crash/extract",
		map[string]any{"html": strings.ReplaceAll(v1Page, "Foundations of Databases", "Edition 5")})
	if code != 200 || hdr.Get("Lixto-Version") != "5" {
		t.Fatalf("post-restart extract: %d Lixto-Version=%q", code, hdr.Get("Lixto-Version"))
	}
	got := sink.waitFor(t, "post-restart delivery", func(rs []hookReceipt) bool {
		return len(rs) > 0 && rs[len(rs)-1].version == 5
	})
	seen := map[uint64]bool{}
	var last uint64
	for _, r := range got {
		if r.version < last {
			t.Fatalf("webhook versions regressed: %d after %d (%+v)", r.version, last, got)
		}
		last = r.version
		seen[r.version] = true
	}
	for v := uint64(1); v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("version %d never delivered (lost delivery): %+v", v, got)
		}
	}
	child2.kill()
}

// waitCursorFile polls the webhook sidecar until its cursor reaches
// want — the durable at-least-once boundary the crash test cuts at.
func waitCursorFile(t *testing.T, path string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var metas []hookMeta
		if data, err := os.ReadFile(path); err == nil {
			if json.Unmarshal(data, &metas) == nil && len(metas) == 1 && metas[0].Cursor >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook cursor never persisted to %d: %+v", want, metas)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
