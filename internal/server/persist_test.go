package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resultlog"
)

// openStore opens a result store rooted at dir with test-friendly
// options (no background fsync batching to wait out).
func openStore(t *testing.T, dir string) *resultlog.Store {
	t.Helper()
	store, err := resultlog.Open(dir, resultlog.Options{Fsync: resultlog.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestRestoreByteIdentity is the core recovery contract in-process: a
// second server rehydrated from the first one's result store serves the
// latest result, its ETag, the conditional-GET behavior, and the
// history byte-identically.
func TestRestoreByteIdentity(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)

	s1 := New(Config{ResultStore: store})
	p1 := newFakePipe("x", 0)
	if err := s1.Register(p1, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		deliver(t, s1, p1)
	}
	ts1 := httptest.NewServer(s1.Handler())
	_, latest1, hdr1 := do(t, "GET", ts1.URL+"/x", nil)
	_, hist1, _ := do(t, "GET", ts1.URL+"/x/history?since=0", nil)
	_, json1, _ := do(t, "GET", ts1.URL+"/x", nil, "Accept", "application/json")
	ts1.Close()
	etag1 := hdr1.Get("ETag")
	if etag1 == "" || hdr1.Get("Lixto-Version") != "5" {
		t.Fatalf("first server headers: ETag=%q Lixto-Version=%q", etag1, hdr1.Get("Lixto-Version"))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same directory, a fresh server,
	// a fresh pipeline that has never ticked.
	store2 := openStore(t, dir)
	defer store2.Close()
	s2 := New(Config{ResultStore: store2})
	p2 := newFakePipe("x", 0)
	if err := s2.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d wrappers, want 1", n)
	}
	if got := p2.out.Version(); got != 5 {
		t.Fatalf("restored collector version = %d, want 5", got)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	code, latest2, hdr2 := do(t, "GET", ts2.URL+"/x", nil)
	if code != 200 || latest2 != latest1 {
		t.Fatalf("latest diverged across restart:\n--- before ---\n%s\n--- after ---\n%s", latest1, latest2)
	}
	if hdr2.Get("ETag") != etag1 {
		t.Fatalf("ETag changed across restart: %q -> %q", etag1, hdr2.Get("ETag"))
	}
	if hdr2.Get("Lixto-Version") != "5" {
		t.Fatalf("Lixto-Version after restore = %q, want 5", hdr2.Get("Lixto-Version"))
	}
	// The pre-crash ETag still answers 304 — caches survive the restart.
	if code, _, _ := do(t, "GET", ts2.URL+"/x", nil, "If-None-Match", etag1); code != 304 {
		t.Fatalf("conditional GET with pre-crash ETag = %d, want 304", code)
	}
	if _, hist2, _ := do(t, "GET", ts2.URL+"/x/history?since=0", nil); hist2 != hist1 {
		t.Fatalf("history diverged across restart:\n--- before ---\n%s\n--- after ---\n%s", hist1, hist2)
	}
	if _, json2, _ := do(t, "GET", ts2.URL+"/x", nil, "Accept", "application/json"); json2 != json1 {
		t.Fatalf("JSON rendering diverged across restart")
	}

	// Live deliveries continue the version sequence from the log.
	deliver(t, s2, p2)
	if got := p2.out.Version(); got != 6 {
		t.Fatalf("post-restore delivery version = %d, want 6", got)
	}
	if _, _, hdr := do(t, "GET", ts2.URL+"/x", nil); hdr.Get("Lixto-Version") != "6" {
		t.Fatalf("Lixto-Version after new delivery = %q, want 6", hdr.Get("Lixto-Version"))
	}
}

// TestRestoreNoopRuns pins the no-op record semantics: suppressed
// re-deliveries of unchanged content land in the log as version-only
// records and rehydrate as repeated ring entries, exactly as the live
// suppressed tick left them.
func TestRestoreNoopRuns(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	s1 := New(Config{ResultStore: store})
	p1 := newFakePipe("x", 0)
	if err := s1.Register(p1, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s1, p1)
	// Re-deliver the same document pointer twice: versions 2 and 3 are
	// suppressed no-ops.
	doc := p1.out.Latest()
	for i := 0; i < 2; i++ {
		if _, err := p1.out.Process("", doc); err != nil {
			t.Fatal(err)
		}
		s1.readPipe("x").deliver.snapshot(p1.out)
	}
	deliver(t, s1, p1) // version 4: real change

	ts1 := httptest.NewServer(s1.Handler())
	_, hist1, _ := do(t, "GET", ts1.URL+"/x/history?since=0", nil)
	ts1.Close()
	store.Close()

	st := store.Stats()
	if st.NoopAppends != 2 {
		t.Fatalf("noop appends = %d, want 2 (stats %+v)", st.NoopAppends, st)
	}

	store2 := openStore(t, dir)
	defer store2.Close()
	s2 := New(Config{ResultStore: store2})
	p2 := newFakePipe("x", 0)
	if err := s2.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, hist2, _ := do(t, "GET", ts2.URL+"/x/history?since=0", nil)
	if hist2 != hist1 {
		t.Fatalf("noop-run history diverged:\n--- before ---\n%s\n--- after ---\n%s", hist1, hist2)
	}
	if !strings.Contains(hist2, `count="4"`) {
		t.Fatalf("restored history should hold 4 versions: %s", hist2)
	}
}

// TestRestoreDynamicWrapper: a wrapper registered through /v1 at
// runtime is recompiled from its persisted spec on restart and serves
// its last results without a validation tick.
func TestRestoreDynamicWrapper(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	_, ts1 := newDynamicServer(t, Config{ResultStore: store})
	code, body, _ := do(t, "POST", ts1.URL+"/v1/wrappers",
		map[string]any{"name": "books", "program": v1Wrapper, "html": v1Page, "auxiliary": []string{"page"}})
	if code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	page2 := strings.ReplaceAll(v1Page, "Foundations of Databases", "Principles of Database Systems")
	code, _, hdr := do(t, "POST", ts1.URL+"/v1/wrappers/books/extract", map[string]any{"html": page2})
	if code != 200 || hdr.Get("Lixto-Version") != "2" {
		t.Fatalf("extract: %d Lixto-Version=%q", code, hdr.Get("Lixto-Version"))
	}
	_, want, _ := do(t, "GET", ts1.URL+"/v1/wrappers/books/results", nil)
	store.Close()

	store2 := openStore(t, dir)
	defer store2.Close()
	s2, ts2 := newDynamicServer(t, Config{ResultStore: store2})
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d wrappers, want 1", n)
	}
	code, body, _ = do(t, "GET", ts2.URL+"/v1/wrappers/books", nil)
	if code != 200 || !strings.Contains(body, `"dynamic": true`) {
		t.Fatalf("restored wrapper status: %d %s", code, body)
	}
	code, got, _ := do(t, "GET", ts2.URL+"/v1/wrappers/books/results", nil)
	if code != 200 || got != want {
		t.Fatalf("restored results diverged:\n--- before ---\n%s\n--- after ---\n%s", want, got)
	}
	// The restored wrapper still extracts: the spec round-tripped whole.
	code, body, _ = do(t, "POST", ts2.URL+"/v1/wrappers/books/extract", map[string]any{"html": v1Page})
	if code != 200 || !strings.Contains(body, "Foundations of Databases") {
		t.Fatalf("extract after restore: %d %s", code, body)
	}
}

// TestRestoreSkipsUnknownState: log directories for names no longer
// registered (and lacking a dynamic spec) are left alone, and a
// registered pipeline with an empty log stays empty.
func TestRestoreSkipsUnknownState(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	defer store.Close()
	// Seed state for "gone" with no spec sidecar — as a static pipeline
	// from a previous configuration would leave behind.
	l, err := store.Log("gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(resultlog.Record{Kind: resultlog.KindSnapshot, Version: 1, XML: []byte("<doc/>")}); err != nil {
		t.Fatal(err)
	}

	s := New(Config{ResultStore: store})
	p := newFakePipe("fresh", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	n, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d, want 1 (the registered-but-empty pipeline)", n)
	}
	if p.out.Version() != 0 {
		t.Fatalf("empty log rehydrated versions: %d", p.out.Version())
	}
	if s.pipe("gone") != nil {
		t.Fatal("unregistered state resurrected a pipeline")
	}
}

// TestHistorySinceCursor pins the ?since= cursor mode on the legacy
// history route and the /v1 results route — including that it works
// purely in-memory, with no result store configured.
func TestHistorySinceCursor(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("x", 0)
	p.out.Retain = 10
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		deliver(t, s, p)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, route := range []string{"/x/history", "/v1/wrappers/x/results"} {
		root := "history"
		if strings.Contains(route, "/v1/") {
			root = "results"
		}
		code, body, hdr := do(t, "GET", ts.URL+route+"?since=2", nil)
		if code != 200 {
			t.Fatalf("%s?since=2: %d %s", route, code, body)
		}
		if hdr.Get("Lixto-Version") != "5" {
			t.Fatalf("%s cursor header = %q, want 5", route, hdr.Get("Lixto-Version"))
		}
		if !strings.Contains(body, "<"+root+` name="x" count="3" since="2">`) {
			t.Fatalf("%s root shape: %s", route, body)
		}
		// Oldest first, version-stamped, strictly after the cursor.
		i3 := strings.Index(body, `<result version="3">`)
		i4 := strings.Index(body, `<result version="4">`)
		i5 := strings.Index(body, `<result version="5">`)
		if i3 < 0 || i4 < i3 || i5 < i4 {
			t.Fatalf("%s order: %s", route, body)
		}
		if strings.Contains(body, `version="2"`) {
			t.Fatalf("%s included the cursor version itself: %s", route, body)
		}

		// ?n pages the cursor scan, keeping the oldest entries so the
		// client advances by re-requesting.
		code, body, _ = do(t, "GET", ts.URL+route+"?since=0&n=2", nil)
		if code != 200 || !strings.Contains(body, `version="1"`) || !strings.Contains(body, `version="2"`) ||
			strings.Contains(body, `version="3"`) {
			t.Fatalf("%s?since=0&n=2: %d %s", route, code, body)
		}

		// A cursor at (or past) the head returns an empty page.
		code, body, _ = do(t, "GET", ts.URL+route+"?since=5", nil)
		if code != 200 || !strings.Contains(body, `count="0"`) {
			t.Fatalf("%s?since=5: %d %s", route, code, body)
		}

		// JSON mode renders the same version-stamped list.
		code, body, _ = do(t, "GET", ts.URL+route+"?since=3", nil, "Accept", "application/json")
		if code != 200 || !json.Valid([]byte(body)) {
			t.Fatalf("%s JSON since: %d %s", route, code, body)
		}
		if !strings.Contains(body, `"version"`) || strings.Count(body, `"result"`) != 2 {
			t.Fatalf("%s JSON shape: %s", route, body)
		}

		// Malformed cursor: uniform 400 envelope.
		code, body, _ = do(t, "GET", ts.URL+route+"?since=abc", nil)
		if code != 400 || envelope(t, body).Kind != "bad_request" {
			t.Fatalf("%s?since=abc: %d %s", route, code, body)
		}
	}
}

// TestWatchReplaySince pins SSE resume: a subscriber presenting its
// last seen delivery version — via Last-Event-ID or ?since= — gets the
// missed snapshots replayed in order, each with its own id, before the
// stream goes live. Duplicated ring entries (suppressed no-op ticks)
// advance the cursor without re-sending.
func TestWatchReplaySince(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("feed", 0)
	if err := s.RegisterDynamic(p, 0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // versions 2..4 (registration delivered 1)
		deliver(t, s, p)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // after the SSE clients close (cleanups run LIFO)

	c := openWatch(t, ts.URL+"/v1/wrappers/feed/watch", "Last-Event-ID", "2")
	for _, want := range []uint64{3, 4} {
		ev := c.next(t, 2*time.Second)
		if ev.event != "result" || ev.id != want {
			t.Fatalf("replay event: %q id=%d, want result id=%d", ev.event, ev.id, want)
		}
	}
	// After the replay the stream is live: the next delivery arrives once.
	deliver(t, s, p)
	if ev := c.next(t, 2*time.Second); ev.id != 5 {
		t.Fatalf("live event after replay: id=%d, want 5", ev.id)
	}
	c.none(t, 100*time.Millisecond)

	// ?since= is the header-less spelling of the same cursor.
	c2 := openWatch(t, ts.URL+"/v1/wrappers/feed/watch?since=4")
	if ev := c2.next(t, 2*time.Second); ev.id != 5 {
		t.Fatalf("?since=4 replay: id=%d, want 5", ev.id)
	}

	// A no-op re-delivery duplicates the ring tail; replay must advance
	// past it without re-sending the unchanged document.
	doc := p.out.Latest()
	if _, err := p.out.Process("", doc); err != nil {
		t.Fatal(err)
	}
	s.readPipe("feed").deliver.snapshot(p.out) // version 6, suppressed
	c3 := openWatch(t, ts.URL+"/v1/wrappers/feed/watch", "Last-Event-ID", "4")
	if ev := c3.next(t, 2*time.Second); ev.id != 5 {
		t.Fatalf("replay over noop: first id=%d, want 5", ev.id)
	}
	c3.none(t, 100*time.Millisecond)
	// The cursor advanced past the no-op: the next change is id 7.
	deliver(t, s, p)
	if ev := c3.next(t, 2*time.Second); ev.id != 7 {
		t.Fatalf("live after noop replay: id=%d, want 7", ev.id)
	}

	// A cursor at the head replays nothing and waits silently.
	c4 := openWatch(t, ts.URL+"/v1/wrappers/feed/watch", "Last-Event-ID", "7")
	c4.none(t, 100*time.Millisecond)
}

// TestStatuszPersistenceShape pins the "persistence" stats block: keyed
// fields appear on /statusz and GET /v1/wrappers when a result store is
// configured, and are absent when it is not.
func TestStatuszPersistenceShape(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	defer store.Close()
	s := New(Config{ResultStore: store, AllowDynamic: true})
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s, p)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, url := range []string{ts.URL + "/statusz", ts.URL + "/v1/wrappers"} {
		code, body, _ := do(t, "GET", url, nil)
		if code != 200 {
			t.Fatalf("%s = %d", url, code)
		}
		for _, key := range []string{`"persistence"`, `"wrappers"`, `"segments"`, `"appends"`,
			`"noop_appends"`, `"bytes_appended"`, `"fsyncs"`, `"batched_syncs"`, `"rotations"`,
			`"truncated_segments"`, `"replayed_records"`, `"torn_records"`, `"append_errors"`} {
			if !strings.Contains(body, key) {
				t.Errorf("%s missing %s", url, key)
			}
		}
		if !strings.Contains(body, `"appends": 1`) {
			t.Errorf("%s does not count the logged delivery:\n%s", url, body)
		}
	}

	// Without a store the block stays out of the report entirely.
	bare := New(Config{})
	if err := bare.Register(newFakePipe("y", 0), time.Hour); err != nil {
		t.Fatal(err)
	}
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	if _, body, _ := do(t, "GET", tsBare.URL+"/statusz", nil); strings.Contains(body, `"persistence"`) {
		t.Fatalf("statusz reports persistence without a store:\n%s", body)
	}
}
