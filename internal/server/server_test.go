package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/transform"
	"repro/internal/xmlenc"
)

// fakePipe is a controllable pipeline: every Tick sleeps for delay and
// then delivers one numbered document to its collector.
type fakePipe struct {
	name  string
	out   *transform.Collector
	delay time.Duration
	err   error
	ticks atomic.Uint64
}

func newFakePipe(name string, delay time.Duration) *fakePipe {
	return &fakePipe{name: name, out: &transform.Collector{CompName: name}, delay: delay}
}

func (f *fakePipe) PipeName() string { return f.name }

func (f *fakePipe) Tick() error {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	n := f.ticks.Add(1)
	doc := xmlenc.NewElement("doc")
	doc.SetAttr("n", strconv.FormatUint(n, 10))
	if _, err := f.out.Process("", doc); err != nil {
		return err
	}
	return f.err
}

func (f *fakePipe) Output() *transform.Collector { return f.out }

func get(t *testing.T, url string, header ...string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestRegisterValidation(t *testing.T) {
	s := New(Config{})
	if err := s.Register(newFakePipe("healthz", 0), 0); err == nil {
		t.Fatal("reserved name accepted")
	}
	if err := s.Register(newFakePipe("x", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(newFakePipe("x", 0), 0); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestEndpoints(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("x", 0)
	p.out.Retain = 4
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, ct := get(t, ts.URL+"/x")
	if code != 200 || ct != "application/xml; charset=utf-8" || !strings.Contains(body, `<doc n="10"/>`) {
		t.Fatalf("latest XML: %d %s %q", code, ct, body)
	}
	code, body, ct = get(t, ts.URL+"/x", "Accept", "application/json")
	if code != 200 || ct != "application/json; charset=utf-8" {
		t.Fatalf("latest JSON: %d %s", code, ct)
	}
	var doc struct {
		Name  string            `json:"name"`
		Attrs map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("latest JSON unmarshal: %v (%q)", err, body)
	}
	if doc.Name != "doc" || doc.Attrs["n"] != "10" {
		t.Fatalf("latest JSON content: %+v", doc)
	}
	// XML explicitly preferred over JSON.
	code, _, ct = get(t, ts.URL+"/x", "Accept", "application/xml, application/json")
	if code != 200 || ct != "application/xml; charset=utf-8" {
		t.Fatalf("Accept order ignored: %d %s", code, ct)
	}

	// History is newest first and bounded by retention.
	code, body, _ = get(t, ts.URL+"/x/history?n=3")
	if code != 200 || strings.Count(body, "<doc") != 3 {
		t.Fatalf("history n=3: %d %q", code, body)
	}
	if strings.Index(body, `n="10"`) > strings.Index(body, `n="9"`) {
		t.Fatalf("history not newest-first: %q", body)
	}
	code, body, _ = get(t, ts.URL+"/x/history")
	if code != 200 || strings.Count(body, "<doc") != 4 {
		t.Fatalf("history default should return all 4 retained: %d %q", code, body)
	}
	if code, _, _ = get(t, ts.URL+"/x/history?n=0"); code != http.StatusBadRequest {
		t.Fatalf("history n=0 = %d, want 400", code)
	}

	if code, _, _ = get(t, ts.URL+"/nosuch"); code != http.StatusNotFound {
		t.Fatalf("unknown pipeline = %d, want 404", code)
	}
	if code, body, _ = get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}

	code, body, _ = get(t, ts.URL+"/statusz")
	if code != 200 {
		t.Fatalf("statusz: %d", code)
	}
	var status struct {
		Pipelines []PipelineStatus `json:"pipelines"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Pipelines) != 1 || status.Pipelines[0].Delivered != 10 || status.Pipelines[0].Retained != 4 {
		t.Fatalf("statusz content: %q", body)
	}
}

func TestNoDataYet(t *testing.T) {
	s := New(Config{})
	if err := s.Register(newFakePipe("x", 0), time.Hour); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _, _ := get(t, ts.URL+"/x"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty pipeline = %d, want 503", code)
	}
}

func TestTickErrorRecorded(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("x", 0)
	p.err = fmt.Errorf("source down")
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	ps := s.pipe("x")
	ps.tickOnce()
	st := ps.status("x")
	if st.Ticks != 1 || st.Errors != 1 || st.LastError != "source down" {
		t.Fatalf("status after failing tick: %+v", st)
	}
}

// TestConcurrentPipelinesUnderLoad runs all four Section 6 application
// pipelines on their own goroutines while hammering the read endpoints
// from parallel clients; run under -race this exercises every lock in
// the server, the collectors and the engines.
func TestConcurrentPipelinesUnderLoad(t *testing.T) {
	np, err := apps.NewNowPlaying(7)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := apps.NewFlightInfo(7, []apps.Subscription{{Number: "OS105"}})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := apps.NewPressClipping(7)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := apps.NewPowerTrading(7)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Addr: "127.0.0.1:0", DefaultInterval: 5 * time.Millisecond})
	for _, p := range []Pipeline{np, fl, pc, pw} {
		if err := s.Register(p, 0); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	select {
	case <-s.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + s.Addr()

	// While the pipelines tick, hammer every endpoint in parallel.
	var wg sync.WaitGroup
	var health200 atomic.Int64
	stop := make(chan struct{})
	time.AfterFunc(400*time.Millisecond, func() { close(stop) })
	paths := []string{"/nowplaying", "/flights", "/press", "/power",
		"/nowplaying/history?n=3", "/statusz", "/healthz"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(i+j)%len(paths)]
				req, _ := http.NewRequest("GET", base+path, nil)
				if j%2 == 0 {
					req.Header.Set("Accept", "application/json")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue // transient during shutdown races
				}
				io.Copy(io.Discard, resp.Body)
				if path == "/healthz" && resp.StatusCode == 200 {
					health200.Add(1)
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	if health200.Load() == 0 {
		t.Error("healthz never returned 200 while ticking")
	}
	// Every pipeline must have data by now.
	for _, path := range []string{"/nowplaying", "/flights", "/press", "/power"} {
		if code, body, _ := get(t, base+path); code != 200 {
			t.Errorf("%s = %d (%q)", path, code, body)
		}
	}
	for _, st := range s.Status() {
		if st.Ticks == 0 {
			t.Errorf("pipeline %s never ticked", st.Name)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestGracefulShutdownDrainsInFlightTick cancels the server while a
// slow tick is guaranteed to be in flight and asserts that the tick
// completed: every started tick delivered its document and was counted
// in the status, and nothing ticks after Run returns.
func TestGracefulShutdownDrainsInFlightTick(t *testing.T) {
	p := newFakePipe("slow", 30*time.Millisecond)
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Register(p, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	select {
	case <-s.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	// With a 20ms interval and 30ms ticks, a tick is in flight more
	// often than not; cancel mid-stream.
	time.Sleep(75 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}

	started := p.ticks.Load()
	delivered := p.out.Len()
	counted := s.Status()[0].Ticks
	if started == 0 {
		t.Fatal("no tick ever ran")
	}
	if uint64(delivered) != started || counted != started {
		t.Fatalf("dropped tick: started=%d delivered=%d counted=%d",
			started, delivered, counted)
	}
	// Nothing may tick after shutdown.
	time.Sleep(60 * time.Millisecond)
	if p.ticks.Load() != started {
		t.Fatalf("pipeline ticked after shutdown (%d -> %d)", started, p.ticks.Load())
	}
}

// TestRenderCacheStableAcrossRequests pins the per-pipeline render
// cache: while the latest document is unchanged, repeated GETs serve
// identical bytes (from cache), and a new delivery refreshes them.
func TestRenderCacheStableAcrossRequests(t *testing.T) {
	p := newFakePipe("cachepipe", 0)
	s := New(Config{})
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body1, ct1 := get(t, ts.URL+"/cachepipe")
	_, body2, _ := get(t, ts.URL+"/cachepipe")
	if body1 != body2 || ct1 != "application/xml; charset=utf-8" {
		t.Fatalf("cached responses differ: %q vs %q (%s)", body1, body2, ct1)
	}
	_, json1, ctj := get(t, ts.URL+"/cachepipe", "Accept", "application/json")
	if ctj != "application/json; charset=utf-8" || json1 == body1 {
		t.Fatalf("JSON negotiation broken under cache: %s %q", ctj, json1)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	_, body3, _ := get(t, ts.URL+"/cachepipe")
	if body3 == body1 {
		t.Fatal("render cache served a stale document after a new delivery")
	}
}

// TestPprofEndpoint verifies /debug/pprof is mounted only when enabled
// and that "debug" is a reserved pipeline name.
func TestPprofEndpoint(t *testing.T) {
	off := New(Config{})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if code, _, _ := get(t, tsOff.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof disabled: GET /debug/pprof/ = %d, want 404", code)
	}

	on := New(Config{EnablePprof: true})
	if err := on.Register(newFakePipe("debug", 0), time.Hour); err == nil {
		t.Fatal("pipeline named debug must be rejected")
	}
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	code, body, _ := get(t, tsOn.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof enabled: GET /debug/pprof/ = %d (%q...)", code, body[:min(len(body), 80)])
	}
}

// statsPipe is a fakePipe that also reports extraction memoization
// counters, as the Section 6 application pipelines do.
type statsPipe struct {
	*fakePipe
	stats transform.ExtractionStats
}

func (s *statsPipe) ExtractionStats() transform.ExtractionStats { return s.stats }

// TestStatuszExtractionStats checks that pipelines exposing extraction
// caches get their hit counters surfaced per pipeline on /statusz.
func TestStatuszExtractionStats(t *testing.T) {
	s := New(Config{})
	plain := newFakePipe("plain", 0)
	caching := &statsPipe{
		fakePipe: newFakePipe("caching", 0),
		stats: transform.ExtractionStats{PollCacheHits: 3, MatchCacheHits: 41, MatchCacheMisses: 7,
			SubtreeHits: 19, SubtreeMisses: 4, DirtyNodes: 120, ReusedNodes: 4800,
			ParseNS: 1200, EvalNS: 3400, BatchSize: 2},
	}
	if err := s.Register(plain, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(caching, time.Hour); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d", code)
	}
	var report struct {
		Pipelines []PipelineStatus `json:"pipelines"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	byName := map[string]PipelineStatus{}
	for _, p := range report.Pipelines {
		byName[p.Name] = p
	}
	if st := byName["plain"].Extraction; st != nil {
		t.Errorf("plain pipeline reports extraction stats: %+v", st)
	}
	st := byName["caching"].Extraction
	if st == nil {
		t.Fatalf("caching pipeline lacks extraction stats:\n%s", body)
	}
	if *st != caching.stats {
		t.Errorf("extraction stats = %+v, want %+v", *st, caching.stats)
	}
	for _, field := range []string{"match_cache_hits", "parse_ns", "eval_ns", "batch_size",
		"subtree_hits", "subtree_misses", "dirty_nodes", "reused_nodes"} {
		if !strings.Contains(body, field) {
			t.Errorf("statusz body lacks %s:\n%s", field, body)
		}
	}
}

// TestAppPipelinesReportExtractionStats checks the Section 6 apps
// implement ExtractionStatser end to end: after a few ticks over
// unchanged pages the flight pipeline reports poll cache hits.
func TestAppPipelinesReportExtractionStats(t *testing.T) {
	app, err := apps.NewFlightInfo(7, []apps.Subscription{{Number: "OS001"}})
	if err != nil {
		t.Fatal(err)
	}
	var es ExtractionStatser = app // compile-time check
	for i := 0; i < 3; i++ {
		app.Engine.Tick() // no Advance: pages unchanged after the first tick
	}
	st := es.ExtractionStats()
	if st.PollCacheHits == 0 {
		t.Errorf("flight pipeline reports no poll cache hits after repeated ticks: %+v", st)
	}
	if st.MatchCacheMisses == 0 {
		t.Errorf("flight pipeline reports no compiled matches at all: %+v", st)
	}
}
