package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/elog"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

// The /v1 wrapper-lifecycle API. Every response body is either a
// document rendering (XML, or JSON under Accept: application/json) or
// the uniform error envelope
//
//	{"error":{"kind":"parse","message":"...","pos":{"rule":2,"line":3}}}
//
// Endpoints:
//
//	POST   /v1/wrappers                 compile + register a wrapper at runtime
//	GET    /v1/wrappers                 list registered wrappers (+ scheduler/cache stats)
//	GET    /v1/wrappers/{name}          one wrapper's status
//	PATCH  /v1/wrappers/{name}          reschedule: {"interval_ms": N} moves the wrapper
//	                                    in the live deadline heap (0 = on-demand)
//	DELETE /v1/wrappers/{name}          retire a dynamic wrapper (drains its ticks)
//	POST   /v1/wrappers/{name}/extract  synchronous one-shot extraction
//	GET    /v1/wrappers/{name}/results  latest result; ?n=K for the K most recent
//	POST   /v1/extract                  anonymous one-shot (compile + extract, register nothing)
//
// Bad methods on /v1 routes get 405 with an Allow header; program
// submission is size-limited (Config.MaxProgramBytes) and rate-limited
// (Config.MaxCompilesPerMinute).

// apiError is the JSON error envelope payload.
type apiError struct {
	Kind    string     `json:"kind"`
	Message string     `json:"message"`
	Pos     *lixto.Pos `json:"pos,omitempty"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// writeError emits the uniform JSON error envelope.
func writeError(w http.ResponseWriter, status int, kind, msg string, pos *lixto.Pos) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.MarshalIndent(errorBody{apiError{Kind: kind, Message: msg, Pos: pos}}, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":{"kind":%q,"message":"encoding failure"}}`, kind)
		return
	}
	w.Write(append(data, '\n'))
}

// writeSDKError maps a typed SDK error onto a status code and the
// envelope: program errors are the client's fault (400), unreachable
// sources are upstream failures (502), extraction failures are
// unprocessable programs (422).
func writeSDKError(w http.ResponseWriter, err error) {
	le := lixto.AsError(err)
	status := http.StatusInternalServerError
	switch le.Kind {
	case lixto.KindParse, lixto.KindStratify:
		status = http.StatusBadRequest
	case lixto.KindFetch:
		status = http.StatusBadGateway
	case lixto.KindEval:
		status = http.StatusUnprocessableEntity
	}
	writeError(w, status, string(le.Kind), le.Msg, le.Pos)
}

// methodNotAllowed emits 405 with the Allow header and the envelope.
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method not allowed; allowed: "+allow, nil)
}

// decodeJSON reads a size-limited JSON body into dst, writing the
// envelope (413 or 400) on failure.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	limit := s.cfg.MaxProgramBytes
	if limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, int64(limit))
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", limit), nil)
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error(), nil)
		}
		return false
	}
	return true
}

// writeDoc renders one document as XML (or JSON per Accept). The
// response is content-negotiated, so Vary: Accept and an explicit
// charset keep intermediaries from serving the wrong encoding.
func writeDoc(w http.ResponseWriter, r *http.Request, doc *xmlenc.Node) {
	w.Header().Add("Vary", "Accept")
	if wantsJSON(r) {
		data, err := xmlenc.MarshalJSONIndent(doc)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Write(xmlenc.MarshalIndentBytes(doc))
}

// rateLimiter is a token bucket: perMinute tokens refill continuously,
// with a burst of the same size. A nil limiter never limits.
type rateLimiter struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64 // tokens per second
	burst  float64
}

func newRateLimiter(perMinute int) *rateLimiter {
	if perMinute < 0 {
		return nil
	}
	return &rateLimiter{rate: float64(perMinute) / 60, burst: float64(perMinute)}
}

func (rl *rateLimiter) allow() bool {
	if rl == nil {
		return true
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := time.Now()
	if rl.last.IsZero() {
		rl.tokens = rl.burst
	} else {
		rl.tokens += now.Sub(rl.last).Seconds() * rl.rate
		if rl.tokens > rl.burst {
			rl.tokens = rl.burst
		}
	}
	rl.last = now
	if rl.tokens < 1 {
		return false
	}
	rl.tokens--
	return true
}

// ---------------------------------------------------------------------
// Request/response shapes.

// wrapperSpec is the POST /v1/wrappers body.
type wrapperSpec struct {
	// Name routes the wrapper (GET /v1/wrappers/{name}/...).
	Name string `json:"name"`
	// Program is the Elog wrapper source.
	Program string `json:"program"`
	// HTML, when set, is an inline page served at every document URL
	// the program mentions; otherwise the server's dynamic fetcher
	// resolves the program's own URLs.
	HTML string `json:"html,omitempty"`
	// IntervalMS schedules continuous extraction every so many
	// milliseconds; 0 (or absent) registers the wrapper on-demand: it
	// never ticks on a schedule, extracting only through POST
	// .../extract. Either way registration runs one synchronous
	// validation extraction, so .../results serves data immediately.
	IntervalMS int64 `json:"interval_ms,omitempty"`
	// Root is the output document element name (default "lixto").
	Root string `json:"root,omitempty"`
	// Auxiliary lists additional auxiliary patterns ("document" always
	// is).
	Auxiliary []string `json:"auxiliary,omitempty"`
}

// extractSpec selects the source of a one-shot extraction: an inline
// page, a URL resolved through the wrapper's fetcher, or (neither) the
// program's own document URLs.
type extractSpec struct {
	HTML string `json:"html,omitempty"`
	URL  string `json:"url,omitempty"`
}

// anonSpec is the POST /v1/extract body: a wrapperSpec without a name
// or schedule.
type anonSpec struct {
	Program   string   `json:"program"`
	HTML      string   `json:"html,omitempty"`
	URL       string   `json:"url,omitempty"`
	Root      string   `json:"root,omitempty"`
	Auxiliary []string `json:"auxiliary,omitempty"`
}

// wrapperInfo is one wrapper's status in /v1 responses.
type wrapperInfo struct {
	PipelineStatus
	Dynamic  bool     `json:"dynamic"`
	OnDemand bool     `json:"on_demand,omitempty"`
	Patterns []string `json:"patterns,omitempty"`
	Webhooks int      `json:"webhooks,omitempty"`
}

func (s *Server) wrapperInfo(name string, ps *pipeState) wrapperInfo {
	dynamic, onDemand := ps.flags()
	info := wrapperInfo{PipelineStatus: ps.status(name), Dynamic: dynamic, OnDemand: onDemand,
		Webhooks: ps.hooks.count()}
	if d, ok := ps.p.(*dynPipeline); ok {
		info.Patterns = d.w.Patterns()
	}
	return info
}

// ---------------------------------------------------------------------
// Handlers.

// v1NotFound covers unknown sub-resources of a wrapper
// (/v1/wrappers/{name}/bogus) with the envelope; paths outside the
// registered /v1 routes fall through to the mux's default 404.
func (s *Server) v1NotFound(w http.ResponseWriter, _ *http.Request) {
	writeError(w, http.StatusNotFound, "not_found", "no such /v1 endpoint", nil)
}

func (s *Server) v1Wrappers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.v1ListWrappers(w, r)
	case http.MethodPost:
		s.v1CreateWrapper(w, r)
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

func (s *Server) v1ListWrappers(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := append([]string{}, s.order...)
	s.mu.Unlock()
	sort.Strings(names)
	infos := make([]wrapperInfo, 0, len(names))
	for _, name := range names {
		if ps := s.pipe(name); ps != nil {
			infos = append(infos, s.wrapperInfo(name, ps))
		}
	}
	body := map[string]any{"wrappers": infos, "scheduler": s.SchedulerStatus(),
		"delivery": s.DeliveryStatus(), "webhooks": s.WebhookStatus()}
	if s.cfg.SharedCache != nil {
		body["shared_cache"] = s.cfg.SharedCache.Stats()
	}
	if s.cfg.MatchCache != nil {
		body["match_cache"] = s.cfg.MatchCache.Report()
	}
	if s.cfg.ResultStore != nil {
		body["persistence"] = s.cfg.ResultStore.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// maxIntervalMS bounds scheduled intervals (about 24 days), far below
// the int64-nanosecond overflow that would silently turn a huge
// requested interval into the default cadence.
const maxIntervalMS = int64(1) << 31

func (s *Server) v1CreateWrapper(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowDynamic {
		writeError(w, http.StatusForbidden, "forbidden",
			"dynamic wrapper registration is disabled (enable Config.AllowDynamic / -allow-dynamic)", nil)
		return
	}
	var spec wrapperSpec
	if !s.decodeJSON(w, r, &spec) {
		return
	}
	if !validName(spec.Name) {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("invalid wrapper name %q", spec.Name), nil)
		return
	}
	if spec.Program == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "program is required", nil)
		return
	}
	if spec.IntervalMS < 0 || spec.IntervalMS > maxIntervalMS {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("interval_ms must be between 0 and %d", maxIntervalMS), nil)
		return
	}
	// The rate limit protects compilation, so invalid requests above do
	// not consume compile budget.
	if !s.limiter.allow() {
		writeError(w, http.StatusTooManyRequests, "rate_limited",
			fmt.Sprintf("compile rate limit of %d/min exceeded", s.cfg.MaxCompilesPerMinute), nil)
		return
	}
	lw, fetcher, err := s.compileSpec(spec.Program, spec.Root, spec.Auxiliary, spec.HTML)
	if err != nil {
		writeSDKError(w, err)
		return
	}
	onDemand := spec.IntervalMS <= 0
	d, err := newDynPipeline(spec.Name, lw, fetcher, s.cfg.MatchCache, s.cfg.NoIncrementalOutput)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	if err := s.RegisterDynamic(d, time.Duration(spec.IntervalMS)*time.Millisecond, onDemand); err != nil {
		switch {
		case errors.Is(err, errDuplicatePipeline):
			writeError(w, http.StatusConflict, "conflict", err.Error(), nil)
		case errors.Is(err, errShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error(), nil)
		case errors.Is(err, errFirstTick):
			writeError(w, http.StatusUnprocessableEntity, "eval", err.Error(), nil)
		default:
			writeError(w, http.StatusBadRequest, "bad_request", err.Error(), nil)
		}
		return
	}
	if store := s.cfg.ResultStore; store != nil {
		// Persist the spec so a restart recompiles and re-registers the
		// wrapper (Server.Restore) with its history intact.
		if err := store.SaveMeta(spec.Name, specFile, spec); err != nil {
			s.cfg.Logf("server: persist spec for %q: %v", spec.Name, err)
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":        spec.Name,
		"patterns":    lw.Patterns(),
		"on_demand":   onDemand,
		"interval_ms": spec.IntervalMS,
		"delivered":   d.out.Len(),
	})
}

// specOptions maps the shared spec fields onto SDK options (used by
// both the registered and the anonymous compile paths).
func specOptions(root string, aux []string) []lixto.Option {
	opts := []lixto.Option{}
	if root != "" {
		opts = append(opts, lixto.WithRoot(root))
	}
	if len(aux) > 0 {
		opts = append(opts, lixto.WithAuxiliary(aux...))
	}
	return opts
}

// dynamicFetcher returns the server's dynamic fetcher, routed through
// the shared fetch/document cache when one is configured: wrappers
// monitoring the same URLs then share one fetch+parse per page per
// freshness window. Inline-page overlays are never cached (their
// content is wrapper-private); only the fall-through fetcher is.
func (s *Server) dynamicFetcher() elog.Fetcher {
	if s.cfg.DynamicFetcher == nil {
		return nil
	}
	if s.cfg.SharedCache != nil {
		return s.cfg.SharedCache.Wrap(s.cfg.DynamicFetcher)
	}
	return s.cfg.DynamicFetcher
}

// compileSpec compiles a submitted program and resolves its fetcher:
// the inline page when given, else the server's dynamic fetcher
// (behind the shared cache when configured). The returned error is a
// typed SDK error. Unless the server runs with NoIncrementalOutput,
// the wrapper is compiled with incremental output on, so repeated
// one-shot extractions (POST .../extract) reuse frozen output
// subtrees across page versions just like scheduled ticks do — safe
// here because the delivery plane never mutates delivered documents.
func (s *Server) compileSpec(program, root string, aux []string, inlineHTML string) (*lixto.Wrapper, elog.Fetcher, error) {
	opts := specOptions(root, aux)
	if !s.cfg.NoIncrementalOutput {
		opts = append(opts, lixto.WithIncrementalOutput(true))
	}
	lw, err := lixto.Compile(program, opts...)
	if err != nil {
		return nil, nil, err
	}
	var fetcher elog.Fetcher
	if inlineHTML != "" {
		// The inline page overlays the entry URLs; crawled links still
		// fall through to the dynamic fetcher when one is configured.
		fetcher, err = lw.InlineFetcher(inlineHTML, s.dynamicFetcher())
		if err != nil {
			return nil, nil, err
		}
	} else if f := s.dynamicFetcher(); f != nil {
		fetcher = f
	} else {
		return nil, nil, &lixto.Error{Kind: lixto.KindEval,
			Msg: "no dynamic fetcher configured; submit an inline html page"}
	}
	return lw.Rebind(lixto.WithFetcher(fetcher)), fetcher, nil
}

func (s *Server) v1Wrapper(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodGet:
		ps := s.pipe(name)
		if ps == nil {
			writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
			return
		}
		writeJSON(w, http.StatusOK, s.wrapperInfo(name, ps))
	case http.MethodPatch:
		s.v1PatchWrapper(w, r, name)
	case http.MethodDelete:
		switch err := s.Deregister(name); {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, errUnknownPipeline):
			writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
		case errors.Is(err, errStaticPipeline):
			writeError(w, http.StatusForbidden, "forbidden",
				fmt.Sprintf("wrapper %q is static and cannot be deleted", name), nil)
		default:
			writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		}
	default:
		methodNotAllowed(w, "GET, PATCH, DELETE")
	}
}

// v1PatchWrapper reschedules a dynamic wrapper in the live deadline
// heap: {"interval_ms": N} sets a new cadence, 0 converts it to
// on-demand. No restart, no recompilation — the wrapper's compiled
// program and caches are untouched.
func (s *Server) v1PatchWrapper(w http.ResponseWriter, r *http.Request, name string) {
	var spec struct {
		IntervalMS *int64 `json:"interval_ms"`
	}
	if !s.decodeJSON(w, r, &spec) {
		return
	}
	if spec.IntervalMS == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "interval_ms is required", nil)
		return
	}
	if *spec.IntervalMS < 0 || *spec.IntervalMS > maxIntervalMS {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("interval_ms must be between 0 and %d", maxIntervalMS), nil)
		return
	}
	switch err := s.SetInterval(name, time.Duration(*spec.IntervalMS)*time.Millisecond); {
	case err == nil:
		ps := s.pipe(name)
		if ps == nil { // deleted while rescheduling
			writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
			return
		}
		writeJSON(w, http.StatusOK, s.wrapperInfo(name, ps))
	case errors.Is(err, errUnknownPipeline):
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
	case errors.Is(err, errStaticPipeline):
		writeError(w, http.StatusForbidden, "forbidden",
			fmt.Sprintf("wrapper %q is static and cannot be rescheduled", name), nil)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
	}
}

func (s *Server) v1WrapperExtract(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST")
		return
	}
	ps := s.pipe(r.PathValue("name"))
	if ps == nil {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no wrapper %q", r.PathValue("name")), nil)
		return
	}
	d, ok := ps.p.(*dynPipeline)
	if !ok {
		writeError(w, http.StatusForbidden, "forbidden",
			"one-shot extraction targets dynamically registered wrappers", nil)
		return
	}
	var spec extractSpec
	if !s.decodeJSON(w, r, &spec) {
		return
	}
	src, ok := sourceFromSpec(w, spec.HTML, spec.URL)
	if !ok {
		return
	}
	var opts []lixto.Option
	if spec.URL != "" && s.cfg.DynamicFetcher != nil {
		// url extraction resolves through the server's fetcher even for
		// wrappers registered with an inline page.
		opts = append(opts, lixto.WithFetcher(s.dynamicFetcher()))
	}
	res, err := d.w.Extract(r.Context(), src, opts...)
	if err != nil {
		writeSDKError(w, err)
		return
	}
	doc := res.XML()
	// A one-shot result is a delivery like any other: it lands in the
	// wrapper's collector, shows up under .../results, fans out to
	// watch subscribers and webhooks, and — when persistence is on —
	// reaches the result log before this response acknowledges it.
	if _, err := d.out.Process("extract", doc); err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	ps.deliver.snapshot(d.out)
	w.Header().Set("Lixto-Version", strconv.FormatUint(d.out.Version(), 10))
	writeDoc(w, r, doc)
}

// sourceFromSpec builds the extraction source from a one-shot body,
// writing a 400 envelope when both html and url are given.
func sourceFromSpec(w http.ResponseWriter, html, url string) (lixto.Source, bool) {
	switch {
	case html != "" && url != "":
		writeError(w, http.StatusBadRequest, "bad_request", "provide html or url, not both", nil)
		return nil, false
	case html != "":
		return lixto.HTML(html), true
	case url != "":
		return lixto.URL(url), true
	default:
		return lixto.Origin(), true
	}
}

func (s *Server) v1Results(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	name := r.PathValue("name")
	ps := s.readPipe(name)
	if ps == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
		return
	}
	vals, listed := r.URL.Query()["n"]
	since, hasSince, valid := parseSince(w, r)
	if !valid {
		return
	}
	if hasSince {
		// Cursor mode: everything retained after `since`, oldest first,
		// version-stamped. ?n caps the page; the client pages forward by
		// re-requesting with the last version it saw.
		n := 0
		if listed {
			v, err := strconv.Atoi(vals[0])
			if err != nil || v < 1 {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("query parameter n must be a positive integer, got %q", vals[0]), nil)
				return
			}
			n = v
		}
		out := ps.p.Output()
		asJSON := wantsJSON(r)
		body, err := sinceBody(out, "results", name, since, n, asJSON)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
			return
		}
		setReadRouteHeaders(w, asJSON)
		w.Header().Set("Lixto-Version", strconv.FormatUint(out.Version(), 10))
		w.Write(body)
		return
	}
	if !listed {
		// Without ?n= the latest result is served raw — byte-identical
		// to running the same program through cmd/elogc — straight from
		// the published snapshot.
		sn := ps.deliver.snapshot(ps.p.Output())
		if sn == nil {
			writeError(w, http.StatusServiceUnavailable, "unavailable", "no results yet", nil)
			return
		}
		ps.serveSnapshot(w, r, sn, true)
		return
	}
	n, err := strconv.Atoi(vals[0])
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("query parameter n must be a positive integer, got %q", vals[0]), nil)
		return
	}
	out := ps.p.Output()
	asJSON := wantsJSON(r)
	body, err := ps.deliver.history(out, histKey{n: n, json: asJSON, v1: true}, func() ([]byte, error) {
		docs := out.History(n)
		if asJSON {
			return xmlenc.MarshalJSONList(docs)
		}
		root := xmlenc.NewElement("results")
		root.SetAttr("name", name)
		root.SetAttr("count", strconv.Itoa(len(docs)))
		root.Append(docs...)
		return xmlenc.MarshalIndentBytes(root), nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	setReadRouteHeaders(w, asJSON)
	w.Write(body)
}

func (s *Server) v1Extract(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST")
		return
	}
	if !s.cfg.AllowDynamic {
		writeError(w, http.StatusForbidden, "forbidden",
			"anonymous extraction is disabled (enable Config.AllowDynamic / -allow-dynamic)", nil)
		return
	}
	var spec anonSpec
	if !s.decodeJSON(w, r, &spec) {
		return
	}
	if spec.Program == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "program is required", nil)
		return
	}
	src, ok := sourceFromSpec(w, spec.HTML, spec.URL)
	if !ok {
		return
	}
	// The rate limit protects compilation, so invalid requests above do
	// not consume compile budget.
	if !s.limiter.allow() {
		writeError(w, http.StatusTooManyRequests, "rate_limited",
			fmt.Sprintf("compile rate limit of %d/min exceeded", s.cfg.MaxCompilesPerMinute), nil)
		return
	}
	opts := specOptions(spec.Root, spec.Auxiliary)
	if f := s.dynamicFetcher(); f != nil {
		opts = append(opts, lixto.WithFetcher(f))
	}
	lw, err := lixto.Compile(spec.Program, opts...)
	if err != nil {
		writeSDKError(w, err)
		return
	}
	res, err := lw.Extract(r.Context(), src)
	if err != nil {
		writeSDKError(w, err)
		return
	}
	writeDoc(w, r, res.XML())
}
