package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/elog"
	"repro/internal/transform"
	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

const v1Page = `
<html><body>
  <table class="books">
    <tr class="book"><td class="title">Foundations of Databases</td><td class="price">$ 54.00</td></tr>
    <tr class="book"><td class="title">The Complexity of XPath</td><td class="price">$ 9.50</td></tr>
  </table>
</body></html>`

const v1Wrapper = `page(S, X)  <- document("shop", S), subelem(S, .body, X)
book(S, X)  <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)`

// do issues a request with an optional JSON body and returns status,
// body, and headers.
func do(t *testing.T, method, url string, body any, header ...string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data), resp.Header
}

// envelope decodes the JSON error envelope.
func envelope(t *testing.T, body string) apiError {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("not an error envelope: %q (%v)", body, err)
	}
	return eb.Error
}

func newDynamicServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.AllowDynamic = true
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestV1DisabledByDefault(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers", map[string]any{"name": "w", "program": v1Wrapper})
	if code != 403 || envelope(t, body).Kind != "forbidden" {
		t.Fatalf("disabled POST: %d %s", code, body)
	}
	code, body, _ = do(t, "POST", ts.URL+"/v1/extract", map[string]any{"program": v1Wrapper})
	if code != 403 || envelope(t, body).Kind != "forbidden" {
		t.Fatalf("disabled extract: %d %s", code, body)
	}
}

// TestV1LifecycleAndByteIdentity is the acceptance check: a wrapper
// POSTed at runtime serves results immediately, and those results are
// byte-identical to running the same source through the SDK the way
// cmd/elogc does.
func TestV1LifecycleAndByteIdentity(t *testing.T) {
	_, ts := newDynamicServer(t, Config{})

	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "books", "program": v1Wrapper, "html": v1Page, "auxiliary": []string{"page"}})
	if code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	var created struct {
		Name     string   `json:"name"`
		Patterns []string `json:"patterns"`
		OnDemand bool     `json:"on_demand"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "books" || !created.OnDemand || len(created.Patterns) != 4 {
		t.Fatalf("created: %+v", created)
	}

	// The elogc path: compile through the SDK with the same design and
	// render with MarshalIndent.
	lw, err := lixto.Compile(v1Wrapper, lixto.WithAuxiliary("page"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := lw.Extract(context.Background(), lixto.HTML(v1Page))
	if err != nil {
		t.Fatal(err)
	}
	want := marshalIndent(res)

	code, got, hdr := do(t, "GET", ts.URL+"/v1/wrappers/books/results", nil)
	if code != 200 || hdr.Get("Content-Type") != "application/xml; charset=utf-8" {
		t.Fatalf("results: %d %s", code, hdr.Get("Content-Type"))
	}
	if got != want {
		t.Fatalf("results not byte-identical to the elogc path:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if !strings.Contains(got, "Foundations of Databases") {
		t.Fatalf("results content: %s", got)
	}

	// Status and listing.
	code, body, _ = do(t, "GET", ts.URL+"/v1/wrappers/books", nil)
	if code != 200 || !strings.Contains(body, `"dynamic": true`) {
		t.Fatalf("status: %d %s", code, body)
	}
	code, body, _ = do(t, "GET", ts.URL+"/v1/wrappers", nil)
	if code != 200 || !strings.Contains(body, `"books"`) {
		t.Fatalf("list: %d %s", code, body)
	}

	// One-shot extraction with a fresh inline page delivers a new result.
	page2 := strings.ReplaceAll(v1Page, "Foundations of Databases", "Principles of Database Systems")
	code, body, _ = do(t, "POST", ts.URL+"/v1/wrappers/books/extract", map[string]any{"html": page2})
	if code != 200 || !strings.Contains(body, "Principles of Database Systems") {
		t.Fatalf("extract: %d %s", code, body)
	}
	code, body, _ = do(t, "GET", ts.URL+"/v1/wrappers/books/results?n=10", nil)
	if code != 200 || !strings.Contains(body, `count="2"`) {
		t.Fatalf("results list: %d %s", code, body)
	}

	// The legacy route serves the same pipeline.
	code, body, _ = do(t, "GET", ts.URL+"/books", nil)
	if code != 200 || !strings.Contains(body, "book") {
		t.Fatalf("legacy latest: %d %s", code, body)
	}

	// Retire.
	code, _, _ = do(t, "DELETE", ts.URL+"/v1/wrappers/books", nil)
	if code != 204 {
		t.Fatalf("delete: %d", code)
	}
	code, body, _ = do(t, "GET", ts.URL+"/v1/wrappers/books", nil)
	if code != 404 || envelope(t, body).Kind != "not_found" {
		t.Fatalf("after delete: %d %s", code, body)
	}
	code, _, _ = do(t, "DELETE", ts.URL+"/v1/wrappers/books", nil)
	if code != 404 {
		t.Fatalf("double delete: %d", code)
	}
}

// marshalIndent renders a result exactly the way cmd/elogc prints it.
func marshalIndent(res *lixto.Result) string {
	return xmlenc.MarshalIndent(res.XML())
}

func TestV1AnonymousExtract(t *testing.T) {
	_, ts := newDynamicServer(t, Config{})
	code, body, hdr := do(t, "POST", ts.URL+"/v1/extract",
		map[string]any{"program": v1Wrapper, "html": v1Page, "root": "books", "auxiliary": []string{"page"}})
	if code != 200 || hdr.Get("Content-Type") != "application/xml; charset=utf-8" {
		t.Fatalf("anon extract: %d %s", code, body)
	}
	if !strings.Contains(body, "<books>") || !strings.Contains(body, "The Complexity of XPath") {
		t.Fatalf("anon extract content: %s", body)
	}
	// JSON rendering honors Accept.
	code, body, hdr = do(t, "POST", ts.URL+"/v1/extract",
		map[string]any{"program": v1Wrapper, "html": v1Page},
		"Accept", "application/json")
	if code != 200 || hdr.Get("Content-Type") != "application/json; charset=utf-8" {
		t.Fatalf("anon extract JSON: %d %s %s", code, hdr.Get("Content-Type"), body)
	}
	if !json.Valid([]byte(body)) {
		t.Fatalf("not JSON: %s", body)
	}
}

func TestV1ErrorEnvelope(t *testing.T) {
	_, ts := newDynamicServer(t, Config{})

	// Parse error: positioned envelope.
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "bad", "program": "a(S, X) <- document(\"u\", S), subelem(S, .body, X)\nbroken("})
	if code != 400 {
		t.Fatalf("parse error status: %d %s", code, body)
	}
	e := envelope(t, body)
	if e.Kind != "parse" || e.Pos == nil || e.Pos.Rule != 2 || e.Pos.Line != 2 {
		t.Fatalf("parse envelope: %+v", e)
	}

	// Unknown wrapper.
	code, body, _ = do(t, "GET", ts.URL+"/v1/wrappers/nope/results", nil)
	if code != 404 || envelope(t, body).Kind != "not_found" {
		t.Fatalf("unknown wrapper: %d %s", code, body)
	}

	// Bad method: 405 with Allow and the envelope.
	code, body, hdr := do(t, "PUT", ts.URL+"/v1/wrappers", nil)
	if code != 405 || hdr.Get("Allow") != "GET, POST" || envelope(t, body).Kind != "method_not_allowed" {
		t.Fatalf("405: %d Allow=%q %s", code, hdr.Get("Allow"), body)
	}
	code, _, hdr = do(t, "DELETE", ts.URL+"/v1/wrappers/x/results", nil)
	if code != 405 || hdr.Get("Allow") != "GET" {
		t.Fatalf("405 results: %d Allow=%q", code, hdr.Get("Allow"))
	}
	code, _, hdr = do(t, "GET", ts.URL+"/v1/extract", nil)
	if code != 405 || hdr.Get("Allow") != "POST" {
		t.Fatalf("405 extract: %d Allow=%q", code, hdr.Get("Allow"))
	}

	// Unknown sub-resource under a wrapper.
	code, body, _ = do(t, "GET", ts.URL+"/v1/wrappers/x/bogus", nil)
	if code != 404 || envelope(t, body).Kind != "not_found" {
		t.Fatalf("bogus subresource: %d %s", code, body)
	}

	// Invalid JSON body.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/wrappers", strings.NewReader("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 || envelope(t, string(data)).Kind != "bad_request" {
		t.Fatalf("bad JSON: %d %s", resp.StatusCode, data)
	}

	// Program missing document entry points.
	code, body, _ = do(t, "POST", ts.URL+"/v1/extract", map[string]any{
		"program": `a(S, X) <- document("u", S), subelem(S, .body, X)`})
	if code != 422 || envelope(t, body).Kind != "eval" {
		t.Fatalf("no fetcher: %d %s", code, body)
	}
}

func TestV1SizeLimit(t *testing.T) {
	_, ts := newDynamicServer(t, Config{MaxProgramBytes: 512})
	big := strings.Repeat("x", 2048)
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "big", "program": v1Wrapper, "html": big})
	if code != 413 || envelope(t, body).Kind != "too_large" {
		t.Fatalf("oversized body: %d %s", code, body)
	}
}

func TestV1RateLimit(t *testing.T) {
	_, ts := newDynamicServer(t, Config{MaxCompilesPerMinute: 3})
	var limited bool
	for i := 0; i < 5; i++ {
		code, body, _ := do(t, "POST", ts.URL+"/v1/extract",
			map[string]any{"program": v1Wrapper, "html": v1Page})
		switch code {
		case 200:
		case 429:
			limited = true
			if envelope(t, body).Kind != "rate_limited" {
				t.Fatalf("429 envelope: %s", body)
			}
		default:
			t.Fatalf("unexpected status %d: %s", code, body)
		}
	}
	if !limited {
		t.Fatal("rate limit never tripped after 5 compiles at 3/min")
	}
}

func TestV1StaticPipelineProtected(t *testing.T) {
	s, ts := newDynamicServer(t, Config{})
	if err := s.Register(newFakePipe("static", 0), time.Hour); err != nil {
		t.Fatal(err)
	}
	code, body, _ := do(t, "DELETE", ts.URL+"/v1/wrappers/static", nil)
	if code != 403 || envelope(t, body).Kind != "forbidden" {
		t.Fatalf("static delete: %d %s", code, body)
	}
	code, body, _ = do(t, "POST", ts.URL+"/v1/wrappers/static/extract", map[string]any{"html": v1Page})
	if code != 403 {
		t.Fatalf("static extract: %d %s", code, body)
	}
	// Duplicate name against the static pipeline.
	code, body, _ = do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "static", "program": v1Wrapper, "html": v1Page})
	if code != 409 || envelope(t, body).Kind != "conflict" {
		t.Fatalf("duplicate: %d %s", code, body)
	}
}

// TestV1URLExtractUsesServerFetcher: a wrapper registered with an
// inline page can still extract from a url, resolved through the
// server's dynamic fetcher.
func TestV1URLExtractUsesServerFetcher(t *testing.T) {
	sim := web.New()
	web.NewBookSite(7, 5).Register(sim, "books.example.com")
	_, ts := newDynamicServer(t, Config{DynamicFetcher: sim})
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "inline", "program": v1Wrapper, "html": v1Page, "auxiliary": []string{"page"}})
	if code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	code, body, _ = do(t, "POST", ts.URL+"/v1/wrappers/inline/extract",
		map[string]any{"url": "books.example.com/bestsellers.html"})
	if code != 200 {
		t.Fatalf("url extract: %d %s", code, body)
	}
	if !strings.Contains(body, "<book>") {
		t.Fatalf("url extract content: %s", body)
	}
}

func TestV1FirstExtractionFailureRejects(t *testing.T) {
	sim := web.New() // empty web: every fetch fails
	_, ts := newDynamicServer(t, Config{DynamicFetcher: sim})
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "dangling", "program": v1Wrapper})
	if code != 422 || envelope(t, body).Kind != "eval" {
		t.Fatalf("first-tick failure: %d %s", code, body)
	}
	// Nothing was left registered.
	code, _, _ = do(t, "GET", ts.URL+"/v1/wrappers/dangling", nil)
	if code != 404 {
		t.Fatalf("failed wrapper still registered: %d", code)
	}
}

func TestV1LegacyHistoryBadParam(t *testing.T) {
	s := New(Config{})
	if err := s.Register(newFakePipe("x", 0), time.Hour); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, bad := range []string{"0", "-3", "abc", "1.5"} {
		code, body, _ := do(t, "GET", ts.URL+"/x/history?n="+bad, nil)
		if code != 400 || envelope(t, body).Kind != "bad_request" {
			t.Fatalf("n=%s: %d %s", bad, code, body)
		}
	}
}

// TestV1ScheduledWrapperTicks registers a scheduled wrapper against a
// live Run server and watches deliveries accumulate without a restart.
func TestV1ScheduledWrapperTicks(t *testing.T) {
	sim := web.New()
	web.NewBookSite(7, 5).Register(sim, "books.example.com")
	s := New(Config{Addr: "127.0.0.1:0", AllowDynamic: true, DynamicFetcher: sim, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()
	<-s.Ready()
	base := "http://" + s.Addr()

	prog := `page(S, X)  <- document("books.example.com/bestsellers.html", S), subelem(S, .body, X)
title(S, X) <- page(_, S), subelem(S, (?.td, [(class, title, exact)]), X)`
	code, body, _ := do(t, "POST", base+"/v1/wrappers",
		map[string]any{"name": "live", "program": prog, "interval_ms": 20})
	if code != 201 {
		t.Fatalf("create scheduled: %d %s", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body, _ = do(t, "GET", base+"/v1/wrappers/live", nil)
		if code != 200 {
			t.Fatalf("status: %d %s", code, body)
		}
		var info struct {
			Ticks     uint64 `json:"ticks"`
			Delivered int    `json:"delivered"`
		}
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatal(err)
		}
		if info.Ticks >= 3 && info.Delivered >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduled wrapper never ticked: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Parked keep-alive connections would otherwise hold Shutdown until
	// the server's read timeout.
	http.DefaultClient.CloseIdleConnections()
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestV1ConcurrentLifecycle exercises the mutable registry under -race:
// wrappers are registered, extracted from, and deleted over HTTP while
// a static pipeline ticks and the status endpoints are polled; every
// successful extract must be accounted for in the wrapper's collector
// (no lost results), and shutdown must drain cleanly.
func TestV1ConcurrentLifecycle(t *testing.T) {
	sim := web.New()
	web.NewBookSite(7, 5).Register(sim, "books.example.com")
	s := New(Config{
		Addr: "127.0.0.1:0", AllowDynamic: true, DynamicFetcher: sim,
		DefaultInterval: 10 * time.Millisecond, MaxCompilesPerMinute: -1,
	})
	static := newFakePipe("static", time.Millisecond)
	if err := s.Register(static, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()
	<-s.Ready()
	base := "http://" + s.Addr()

	const workers = 4
	const rounds = 3
	const extracts = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				name := fmt.Sprintf("w%d-%d", wi, round)
				scheduled := wi%2 == 0
				spec := map[string]any{"name": name, "program": v1Wrapper, "html": v1Page}
				if scheduled {
					spec["interval_ms"] = 5
				}
				code, body, _ := do(t, "POST", base+"/v1/wrappers", spec)
				if code != 201 {
					errs <- fmt.Errorf("%s create: %d %s", name, code, body)
					return
				}
				for k := 0; k < extracts; k++ {
					code, body, _ := do(t, "POST", base+"/v1/wrappers/"+name+"/extract",
						map[string]any{"html": v1Page})
					if code != 200 {
						errs <- fmt.Errorf("%s extract %d: %d %s", name, k, code, body)
						return
					}
				}
				// No lost results: registration delivered 1, every extract 1,
				// scheduled ticks only add more.
				code, body, _ = do(t, "GET", base+"/v1/wrappers/"+name, nil)
				if code != 200 {
					errs <- fmt.Errorf("%s status: %d %s", name, code, body)
					return
				}
				var info struct {
					Delivered int `json:"delivered"`
				}
				if err := json.Unmarshal([]byte(body), &info); err != nil {
					errs <- err
					return
				}
				if info.Delivered < 1+extracts {
					errs <- fmt.Errorf("%s lost results: delivered %d < %d", name, info.Delivered, 1+extracts)
					return
				}
				if code, body, _ := do(t, "DELETE", base+"/v1/wrappers/"+name, nil); code != 204 {
					errs <- fmt.Errorf("%s delete: %d %s", name, code, body)
					return
				}
			}
		}(wi)
	}
	// Status/listing readers in flight.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			do(t, "GET", base+"/statusz", nil)
			do(t, "GET", base+"/v1/wrappers", nil)
			do(t, "GET", base+"/static", nil)
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Only the static pipeline remains.
	code, body, _ := do(t, "GET", base+"/v1/wrappers", nil)
	if code != 200 || strings.Contains(body, `"w0-`) {
		t.Fatalf("leftover wrappers: %d %s", code, body)
	}
	// Parked keep-alive connections would otherwise hold Shutdown until
	// the server's read timeout.
	http.DefaultClient.CloseIdleConnections()
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestV1BatchedFleet pins the server-side batching wiring: with
// Config.MatchCache set, every dynamically registered wrapper attaches
// to the fleet-shared match cache, the listing reports the cache's
// counters, and each wrapper's extraction block carries the fleet's
// batch size.
func TestV1BatchedFleet(t *testing.T) {
	mc := elog.NewMatchCache()
	// The empty web 404s every fetch: fleet wrappers carry inline pages,
	// so only the deliberately broken registration below hits it.
	_, ts := newDynamicServer(t, Config{MatchCache: mc, DynamicFetcher: web.New()})

	const fleet = 3
	for i := 0; i < fleet; i++ {
		code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers",
			map[string]any{"name": fmt.Sprintf("books%d", i), "program": v1Wrapper,
				"html": v1Page, "auxiliary": []string{"page"}})
		if code != 201 {
			t.Fatalf("create %d: %d %s", i, code, body)
		}
	}
	if got := mc.Attached(); got != fleet {
		t.Fatalf("attached = %d, want %d", got, fleet)
	}
	if hits, _ := mc.Stats(); hits == 0 {
		t.Fatal("fleet wrappers over the same page never hit the shared match cache")
	}

	code, body, _ := do(t, "GET", ts.URL+"/v1/wrappers", nil)
	if code != 200 {
		t.Fatalf("list: %d %s", code, body)
	}
	var listing struct {
		MatchCache *elog.BatchStats `json:"match_cache"`
		Wrappers   []struct {
			Extraction *transform.ExtractionStats `json:"extraction"`
		} `json:"wrappers"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.MatchCache == nil || listing.MatchCache.Attached != fleet || listing.MatchCache.Hits == 0 {
		t.Fatalf("listing match_cache = %+v", listing.MatchCache)
	}
	for _, field := range []string{`"evictions"`, `"subtree_hits"`, `"reused_nodes"`} {
		if !strings.Contains(body, field) {
			t.Errorf("listing lacks %s:\n%s", field, body)
		}
	}
	for i, w := range listing.Wrappers {
		if w.Extraction == nil || w.Extraction.BatchSize != fleet {
			t.Fatalf("wrapper %d extraction = %+v, want batch_size %d", i, w.Extraction, fleet)
		}
		if w.Extraction.EvalNS == 0 {
			t.Fatalf("wrapper %d eval_ns = 0 after registration tick", i)
		}
	}

	// The same counters appear on /statusz.
	code, body, _ = do(t, "GET", ts.URL+"/statusz", nil)
	if code != 200 || !strings.Contains(body, `"match_cache"`) || !strings.Contains(body, `"batch_size"`) {
		t.Fatalf("statusz lacks match cache stats: %d\n%s", code, body)
	}

	// Deleting a wrapper detaches it: batch_size must not keep counting
	// retired fleet members.
	code, body, _ = do(t, "DELETE", ts.URL+"/v1/wrappers/books0", nil)
	if code != 204 {
		t.Fatalf("delete: %d %s", code, body)
	}
	if got := mc.Attached(); got != fleet-1 {
		t.Fatalf("attached after delete = %d, want %d", got, fleet-1)
	}

	// A wrapper rejected on its first extraction must not stay attached.
	code, body, _ = do(t, "POST", ts.URL+"/v1/wrappers",
		map[string]any{"name": "broken", "program": v1Wrapper, "interval_ms": 1000})
	if code != 422 {
		t.Fatalf("broken create: %d %s", code, body)
	}
	if got := mc.Attached(); got != fleet-1 {
		t.Fatalf("attached after rejected registration = %d, want %d", got, fleet-1)
	}
}
