package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/xmlenc"
)

// sseEventFor frames one historical document as an "event: result"
// event during Last-Event-ID replay. Replay is rare, so these frames
// are built ad hoc rather than cached like live snapshot frames.
func sseEventFor(doc *xmlenc.Node, ver uint64, asJSON bool) []byte {
	payload := xmlenc.MarshalIndentBytes(doc)
	if asJSON {
		body, err := xmlenc.MarshalJSONIndent(doc)
		if err != nil {
			body = []byte(`{"error":"encoding failure"}`)
		}
		payload = body
	}
	return sseFrameFor(payload, ver)
}

// The change feed: GET /v1/wrappers/{name}/watch streams each new
// result snapshot to every subscriber as a Server-Sent Event. The hub
// fans out the already-encoded snapshot — subscribers share the bytes,
// nothing is re-marshaled per client — and never blocks the tick path:
// a subscriber whose bounded queue is full loses its oldest pending
// event (counted in dropped_slow) so it coalesces onto the newest
// state instead of stalling delivery.

// watchSub is one SSE subscriber's bounded event queue.
type watchSub struct {
	ch chan *snapshot
}

// watchHub is the per-pipeline broadcast registry. All channel sends
// and closes happen under mu, so a send can never race a close.
//
// The tick path never pays for fan-out: broadcast appends the snapshot
// to an ordered backlog and signals the hub's dispatcher goroutine,
// which performs the per-subscriber enqueues. A tick therefore costs
// O(1) in the scheduler no matter how many watchers are attached.
type watchHub struct {
	mu         sync.Mutex
	subs       map[*watchSub]struct{}
	closed     bool
	totalSubs  uint64
	broadcasts uint64
	dropped    uint64
	pending    []*snapshot   // fan-out backlog, delivered in order
	wake       chan struct{} // buffered(1): signals the dispatcher
	running    bool          // dispatcher goroutine is live
}

// subscribe registers a new subscriber with the given queue depth. It
// returns nil when the hub is already closed (pipeline deregistered).
func (h *watchHub) subscribe(queue int) *watchSub {
	if queue < 1 {
		queue = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &watchSub{ch: make(chan *snapshot, queue)}
	if h.subs == nil {
		h.subs = map[*watchSub]struct{}{}
	}
	h.subs[sub] = struct{}{}
	h.totalSubs++
	return sub
}

// unsubscribe removes and closes one subscriber; safe to call after
// the hub itself closed (the close already removed the subscriber).
func (h *watchHub) unsubscribe(sub *watchSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; !ok {
		return
	}
	delete(h.subs, sub)
	close(sub.ch)
}

// broadcast hands sn to the dispatcher and returns immediately; the
// caller (the tick path) never blocks on subscriber queues.
func (h *watchHub) broadcast(sn *snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return
	}
	h.broadcasts++
	h.pending = append(h.pending, sn)
	if !h.running {
		h.running = true
		h.wake = make(chan struct{}, 1)
		go h.dispatch()
	}
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// dispatch drains the backlog in order, fanning each snapshot out to
// every subscriber. It exits when the hub closes.
func (h *watchHub) dispatch() {
	for {
		h.mu.Lock()
		for len(h.pending) > 0 && !h.closed {
			sn := h.pending[0]
			h.pending = h.pending[1:]
			h.fanoutLocked(sn)
		}
		h.pending = nil
		closed := h.closed
		h.mu.Unlock()
		if closed {
			return
		}
		<-h.wake
	}
}

// fanoutLocked offers sn to every subscriber without blocking: when a
// queue is full the oldest pending snapshot is dropped (counted) so
// the subscriber coalesces onto the newest state. Called with h.mu
// held by the dispatcher.
func (h *watchHub) fanoutLocked(sn *snapshot) {
	for sub := range h.subs {
		select {
		case sub.ch <- sn:
			continue
		default:
		}
		select {
		case <-sub.ch:
			h.dropped++
		default:
		}
		select {
		case sub.ch <- sn:
		default:
			h.dropped++
		}
	}
}

// close shuts the hub: every subscriber's channel is closed (their
// handlers observe it and send the SSE close event) and further
// subscriptions are refused.
func (h *watchHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
	}
	h.subs = nil
	if h.running {
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
}

// stats returns (current subscribers, lifetime subscriptions,
// broadcasts, dropped events).
func (h *watchHub) stats() (int, uint64, uint64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs), h.totalSubs, h.broadcasts, h.dropped
}

// v1Watch is the methodless route shim: bad methods get the uniform
// 405 envelope like every other /v1 route.
func (s *Server) v1Watch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	s.handleWatch(w, r)
}

// handleWatch streams result snapshots for one wrapper as SSE. The
// stream survives PATCH reschedules (the pipeState, and so the hub,
// stays put), ends with "event: close" on DELETE or server drain, and
// sends comment heartbeats so intermediaries keep the connection open.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ps := s.readPipe(name)
	if ps == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper named %q", name), nil)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported by connection", nil)
		return
	}
	asJSON := wantsJSON(r)

	sub := ps.deliver.hub.subscribe(s.cfg.WatchQueue)
	if sub == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("wrapper %q is deregistered", name), nil)
		return
	}
	defer ps.deliver.hub.unsubscribe(sub)

	// SSE streams outlive the server's read/write timeouts by design.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})
	rc.SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Add("Vary", "Accept")
	w.WriteHeader(http.StatusOK)

	// A reconnecting subscriber presents its last seen delivery version
	// (the SSE id) via Last-Event-ID — or ?since= for hand-rolled
	// clients — and missed snapshots replay from the retained history
	// before live streaming resumes. Repeated ring entries (suppressed
	// no-op ticks) advance the cursor without re-sending.
	var lastVer uint64
	replaying := false
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if v, err := strconv.ParseUint(lei, 10, 64); err == nil {
			lastVer, replaying = v, true
		}
	}
	if q := r.URL.Query().Get("since"); q != "" && !replaying {
		if v, err := strconv.ParseUint(q, 10, 64); err == nil {
			lastVer, replaying = v, true
		}
	}
	if replaying {
		docs, vers := ps.p.Output().HistorySince(lastVer, 0)
		var prev *xmlenc.Node
		for i, doc := range docs {
			if doc != prev {
				w.Write(sseEventFor(doc, vers[i], asJSON))
				prev = doc
			}
			lastVer = vers[i]
		}
	} else if sn := ps.deliver.snapshot(ps.p.Output()); sn != nil {
		// Send the current state immediately so a new subscriber does
		// not wait for the next change; remember its version to dedupe a
		// broadcast that raced the subscription.
		w.Write(sn.sseFrame(asJSON))
		lastVer = sn.ver
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.cfg.WatchHeartbeat)
	defer heartbeat.Stop()
	closeEvent := func(reason string) {
		fmt.Fprintf(w, "event: close\ndata: %s\n\n", reason)
		fl.Flush()
	}
	for {
		select {
		case sn, ok := <-sub.ch:
			if !ok {
				// Hub closed: wrapper deleted or registration torn down.
				closeEvent("deregistered")
				return
			}
			if sn.ver <= lastVer {
				continue
			}
			lastVer = sn.ver
			w.Write(sn.sseFrame(asJSON))
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			closeEvent("shutting down")
			return
		case <-heartbeat.C:
			fmt.Fprintf(w, ": ping\n\n")
			fl.Flush()
		}
	}
}
