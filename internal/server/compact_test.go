package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/resultlog"
)

// TestDrainCompaction pins the end-to-end compaction path: a store with
// a tight segment bound and a compaction threshold accumulates enough
// deliveries that the drain path rewrites the log to a checkpoint — and
// a server restored from the compacted log serves the latest snapshot
// byte-identically, ETag included, with the next delivery continuing
// the version sequence.
func TestDrainCompaction(t *testing.T) {
	dir := t.TempDir()
	store, err := resultlog.Open(dir, resultlog.Options{
		SegmentBytes:    64, // a delivery or two per segment
		MaxSegments:     64,
		Fsync:           resultlog.FsyncOff,
		CompactSegments: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	s1 := New(Config{ResultStore: store})
	p1 := newFakePipe("x", 0)
	if err := s1.Register(p1, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		deliver(t, s1, p1)
	}
	st := store.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions after 12 deliveries over 256-byte segments: %+v", st)
	}
	if st.Segments > 3+1 {
		t.Errorf("segment count %d not held down by compaction", st.Segments)
	}
	ts1 := httptest.NewServer(s1.Handler())
	_, latest1, hdr1 := do(t, "GET", ts1.URL+"/x", nil)
	ts1.Close()
	if hdr1.Get("Lixto-Version") != "12" {
		t.Fatalf("version before restart: %q", hdr1.Get("Lixto-Version"))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := resultlog.Open(dir, resultlog.Options{Fsync: resultlog.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	s2 := New(Config{ResultStore: store2})
	p2 := newFakePipe("x", 0)
	if err := s2.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Restore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, latest2, hdr2 := do(t, "GET", ts2.URL+"/x", nil)
	if latest2 != latest1 {
		t.Errorf("restored snapshot differs:\n--- before ---\n%s--- after ---\n%s", latest1, latest2)
	}
	if hdr2.Get("ETag") != hdr1.Get("ETag") || hdr2.Get("Lixto-Version") != "12" {
		t.Errorf("restored headers: ETag %q vs %q, version %q",
			hdr2.Get("ETag"), hdr1.Get("ETag"), hdr2.Get("Lixto-Version"))
	}
	// The log continues past the checkpoint.
	deliver(t, s2, p2)
	_, _, hdr3 := do(t, "GET", ts2.URL+"/x", nil)
	if hdr3.Get("Lixto-Version") != "13" {
		t.Errorf("post-restore version = %q, want 13", hdr3.Get("Lixto-Version"))
	}
}
