package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	id    uint64
	data  string
}

// sseClient consumes a watch stream. Events are parsed on a reader
// goroutine so tests can wait with timeouts.
type sseClient struct {
	resp   *http.Response
	events chan sseEvent
	errs   chan error
	cancel context.CancelFunc
}

func openWatch(t *testing.T, url string, header ...string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		cancel()
		resp.Body.Close()
		t.Fatalf("watch open: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream; charset=utf-8" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	c := &sseClient{resp: resp, events: make(chan sseEvent, 64), errs: make(chan error, 1), cancel: cancel}
	go c.readLoop()
	t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

func (c *sseClient) readLoop() {
	br := bufio.NewReader(c.resp.Body)
	var ev sseEvent
	var data []string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			c.errs <- err
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || len(data) > 0 {
				ev.data = strings.Join(data, "\n")
				c.events <- ev
			}
			ev, data = sseEvent{}, nil
		case strings.HasPrefix(line, ":"):
			// Comment (heartbeat); ignored.
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):])
		}
	}
}

// next waits for the next event.
func (c *sseClient) next(t *testing.T, timeout time.Duration) sseEvent {
	t.Helper()
	select {
	case ev := <-c.events:
		return ev
	case err := <-c.errs:
		// The final events of a closing stream may already be parsed
		// and queued; drain them before reporting the stream end.
		select {
		case ev := <-c.events:
			return ev
		default:
		}
		t.Fatalf("watch stream ended: %v", err)
	case <-time.After(timeout):
		t.Fatal("no SSE event within timeout")
	}
	return sseEvent{}
}

// none asserts no event arrives within the window.
func (c *sseClient) none(t *testing.T, window time.Duration) {
	t.Helper()
	select {
	case ev := <-c.events:
		t.Fatalf("unexpected SSE event %q id=%d", ev.event, ev.id)
	case <-time.After(window):
	}
}

// deliver ticks p and publishes the result the way the scheduler's
// tick-commit path does.
func deliver(t *testing.T, s *Server, p *fakePipe) {
	t.Helper()
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	if ps := s.readPipe(p.name); ps != nil {
		ps.deliver.snapshot(p.out)
	}
}

func TestWatchStreamsChanges(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("feed", 0)
	if err := s.RegisterDynamic(p, 0, true); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // after the SSE clients close (cleanups run LIFO)

	c := openWatch(t, ts.URL+"/v1/wrappers/feed/watch")
	// The current state arrives immediately.
	ev := c.next(t, 2*time.Second)
	if ev.event != "result" || !strings.Contains(ev.data, `n="1"`) {
		t.Fatalf("initial event: %q %q", ev.event, ev.data)
	}
	// Each change streams one event whose payload matches the GET body.
	deliver(t, s, p)
	ev = c.next(t, 2*time.Second)
	_, body, _ := get(t, ts.URL+"/feed")
	if ev.event != "result" || ev.data != strings.TrimRight(body, "\n") {
		t.Fatalf("watch payload diverges from GET:\n%q\nvs\n%q", ev.data, body)
	}
	// A no-op re-delivery (same document pointer) is suppressed.
	doc := p.out.Latest()
	if _, err := p.out.Process("", doc); err != nil {
		t.Fatal(err)
	}
	s.readPipe("feed").deliver.snapshot(p.out)
	c.none(t, 150*time.Millisecond)

	// JSON subscribers get the JSON rendering of the same snapshot.
	cj := openWatch(t, ts.URL+"/v1/wrappers/feed/watch", "Accept", "application/json")
	ev = cj.next(t, 2*time.Second)
	if !strings.HasPrefix(ev.data, "{") {
		t.Fatalf("JSON watch payload: %q", ev.data)
	}

	ds := s.DeliveryStatus()
	if ds.Subscribers != 2 || ds.SubscribersTotal != 2 || ds.SuppressedNoopTicks != 1 {
		t.Fatalf("delivery stats: %+v", ds)
	}
}

func TestWatchDeleteAndPatch(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("live", 0)
	if err := s.RegisterDynamic(p, 0, true); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // after the SSE clients close (cleanups run LIFO)

	c := openWatch(t, ts.URL+"/v1/wrappers/live/watch")
	c.next(t, 2*time.Second) // initial state

	// A live reschedule must not disturb the subscription.
	if err := s.SetInterval("live", time.Hour); err != nil {
		t.Fatal(err)
	}
	deliver(t, s, p)
	if ev := c.next(t, 2*time.Second); ev.event != "result" {
		t.Fatalf("after PATCH: %q", ev.event)
	}

	// DELETE closes the stream with an explicit close event.
	if err := s.Deregister("live"); err != nil {
		t.Fatal(err)
	}
	if ev := c.next(t, 2*time.Second); ev.event != "close" || ev.data != "deregistered" {
		t.Fatalf("after DELETE: %q %q", ev.event, ev.data)
	}

	// New watches on the retired name 404 with the envelope.
	code, body, _ := get(t, ts.URL+"/v1/wrappers/live/watch")
	if code != 404 || !strings.Contains(body, `"not_found"`) {
		t.Fatalf("watch after delete: %d %q", code, body)
	}
	// Bad methods get the uniform 405.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/wrappers/live/watch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 || resp.Header.Get("Allow") != "GET" {
		t.Fatalf("watch POST: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestWatchSlowClientDrops pins the backpressure policy: a subscriber
// that stops reading loses its oldest pending events (counted) while
// the tick path never blocks, and the subscriber coalesces onto recent
// state once it resumes.
func TestWatchSlowClientDrops(t *testing.T) {
	s := New(Config{WatchQueue: 2})
	p := newFakePipe("burst", 0)
	if err := s.RegisterDynamic(p, 0, true); err != nil {
		t.Fatal(err)
	}
	ps := s.readPipe("burst")
	sub := ps.deliver.hub.subscribe(s.cfg.WatchQueue)
	if sub == nil {
		t.Fatal("subscribe failed")
	}
	defer ps.deliver.hub.unsubscribe(sub)

	// Publish far more changes than the queue holds without reading.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			deliver(t, s, p)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast blocked on a slow subscriber")
	}
	// broadcast only enqueues; wait for the dispatcher to fan the
	// backlog out before inspecting the subscriber queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ps.deliver.hub.mu.Lock()
		n := len(ps.deliver.hub.pending)
		ps.deliver.hub.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ds := s.DeliveryStatus()
	if ds.DroppedSlow == 0 {
		t.Fatalf("no drops counted after overflowing a queue of 2: %+v", ds)
	}
	// The queue still holds the most recent events in order.
	var last uint64
	n := 0
	for {
		select {
		case sn := <-sub.ch:
			if sn.seq <= last {
				t.Fatalf("event order violated: %d after %d", sn.seq, last)
			}
			last = sn.seq
			n++
			continue
		default:
		}
		break
	}
	if n == 0 || n > 2 {
		t.Fatalf("queued events = %d, want 1..2", n)
	}
	if last != ps.deliver.seq.Load() {
		t.Fatalf("newest queued event %d is not the latest snapshot %d", last, ps.deliver.seq.Load())
	}
}

// TestWatchShutdownDrain runs the real server lifecycle and asserts
// cancellation cleanly ends open SSE streams with a close event instead
// of hanging Shutdown until the grace timeout.
func TestWatchShutdownDrain(t *testing.T) {
	p := newFakePipe("drainfeed", 0)
	s := New(Config{Addr: "127.0.0.1:0", ShutdownGrace: 5 * time.Second})
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	select {
	case <-s.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + s.Addr()

	clients := make([]*sseClient, 3)
	for i := range clients {
		clients[i] = openWatch(t, base+"/v1/wrappers/drainfeed/watch")
		clients[i].next(t, 2*time.Second) // initial state
	}

	start := time.Now()
	cancel()
	for _, c := range clients {
		// Result events scheduled before the drain may still arrive;
		// the stream must end with the shutdown close event.
		for {
			ev := c.next(t, 3*time.Second)
			if ev.event == "result" {
				continue
			}
			if ev.event != "close" || ev.data != "shutting down" {
				t.Fatalf("shutdown close event: %q %q", ev.event, ev.data)
			}
			break
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Run did not return after cancel with open watch streams")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown waited out the grace period (%v) instead of draining streams", elapsed)
	}
}

// TestWatchLifecycleStress races subscribe/unsubscribe against
// DELETE, re-register, and PATCH reschedules (run under -race in CI):
// no writes to closed subscribers, no stuck streams, and every
// subscriber observes strictly increasing event ids.
func TestWatchLifecycleStress(t *testing.T) {
	// The short heartbeat keeps idle subscriber reads from stalling the
	// test, and exercises the keepalive path under churn.
	s := New(Config{WatchQueue: 4, WatchHeartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // after the SSE clients close (cleanups run LIFO)

	reg := func() error { return s.RegisterDynamic(newFakePipe("churn", 0), 0, true) }
	if err := reg(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	time.AfterFunc(600*time.Millisecond, func() { close(stop) })
	var wg sync.WaitGroup

	// Lifecycle churn: delete, re-register, reschedule.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Deregister("churn")
			reg()
			s.SetInterval("churn", time.Duration(1+time.Now().UnixNano()%5)*time.Hour)
		}
	}()
	// Publisher: keep delivering on whatever pipeline is current.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ps := s.readPipe("churn"); ps != nil {
				if fp, ok := ps.p.(*fakePipe); ok {
					fp.Tick()
					ps.deliver.snapshot(fp.out)
				}
			}
		}
	}()
	// Subscribers: open a watch, consume a few events asserting id
	// monotonicity, close, repeat.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/wrappers/churn/watch")
				if err != nil {
					continue
				}
				if resp.StatusCode != 200 {
					resp.Body.Close()
					continue
				}
				br := bufio.NewReader(resp.Body)
				var last uint64
				for ev := 0; ev < 8; ev++ {
					line, err := br.ReadString('\n')
					if err != nil {
						break
					}
					line = strings.TrimRight(line, "\n")
					if !strings.HasPrefix(line, "id: ") {
						continue
					}
					id, _ := strconv.ParseUint(line[len("id: "):], 10, 64)
					if id <= last {
						t.Errorf("subscriber saw id %d after %d", id, last)
						break
					}
					last = id
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// After the churn settles the server still works end to end.
	s.Deregister("churn")
	if err := reg(); err != nil {
		t.Fatal(err)
	}
	c := openWatch(t, ts.URL+"/v1/wrappers/churn/watch")
	if ev := c.next(t, 2*time.Second); ev.event != "result" {
		t.Fatalf("post-stress watch: %q", ev.event)
	}
	if code, _, _ := get(t, ts.URL+"/churn"); code != 200 {
		t.Fatalf("post-stress read: %d", code)
	}
}

// TestWatchCloseEventWireFormat pins the exact close-event bytes on
// the wire. Clients key on these strings; changing either is a
// breaking protocol change.
func TestWatchCloseEventWireFormat(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("pin", 0)
	if err := s.RegisterDynamic(p, 0, true); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/wrappers/pin/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan string, 1)
	go func() {
		raw, _ := io.ReadAll(resp.Body)
		done <- string(raw)
	}()
	time.Sleep(50 * time.Millisecond) // let the initial frame flush
	if err := s.Deregister("pin"); err != nil {
		t.Fatal(err)
	}
	select {
	case raw := <-done:
		if !strings.HasSuffix(raw, "event: close\ndata: deregistered\n\n") {
			t.Fatalf("deregister close frame not byte-exact; stream tail: %q", raw[max(0, len(raw)-80):])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after deregister")
	}

	// The drain variant: a running server cancelled with an open stream.
	p2 := newFakePipe("pin2", 0)
	s2 := New(Config{Addr: "127.0.0.1:0"})
	if err := s2.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p2.Tick(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s2.Run(ctx) }()
	<-s2.Ready()
	resp2, err := http.Get("http://" + s2.Addr() + "/v1/wrappers/pin2/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	done2 := make(chan string, 1)
	go func() {
		raw, _ := io.ReadAll(resp2.Body)
		done2 <- string(raw)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case raw := <-done2:
		if !strings.HasSuffix(raw, "event: close\ndata: shutting down\n\n") {
			t.Fatalf("shutdown close frame not byte-exact; stream tail: %q", raw[max(0, len(raw)-80):])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after shutdown")
	}
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

func TestWatchStatuszShape(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("shape", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close) // after the SSE clients close (cleanups run LIFO)
	c := openWatch(t, ts.URL+"/v1/wrappers/shape/watch")
	c.next(t, 2*time.Second)

	for _, url := range []string{ts.URL + "/statusz", ts.URL + "/v1/wrappers"} {
		code, body, _ := get(t, url)
		if code != 200 {
			t.Fatalf("%s = %d", url, code)
		}
		for _, key := range []string{`"delivery"`, `"snapshots"`, `"suppressed_noop_ticks"`,
			`"broadcasts"`, `"subscribers"`, `"subscribers_total"`, `"dropped_slow"`,
			`"etag_hits"`, `"etag_misses"`} {
			if !strings.Contains(body, key) {
				t.Errorf("%s missing %s", url, key)
			}
		}
		if !strings.Contains(body, fmt.Sprintf(`"subscribers": %d`, 1)) {
			t.Errorf("%s does not report the live subscriber", url)
		}
	}
}
