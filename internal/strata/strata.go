// Package strata implements the classical iterative stratification
// algorithm for datalog-style rule sets with negation: predicates are
// assigned stratum numbers so that every negative dependency points to
// a strictly lower stratum and every positive dependency to the same
// stratum or lower. Programs with a cycle through negation have no
// stratified semantics and are rejected.
//
// Both rule engines of this repository — the generic datalog evaluator
// (internal/datalog) and the Elog wrapper evaluator (internal/elog) —
// stratify through this one implementation, so the two cannot drift.
package strata

import "errors"

// ErrNotStratifiable is returned when the dependency graph has a cycle
// through a negative edge.
var ErrNotStratifiable = errors.New("not stratifiable: cycle through negation")

// Dep is one body dependency of a rule: the referenced predicate and
// whether the reference is negated.
type Dep struct {
	Pred    string
	Negated bool
}

// Rule is the dependency skeleton of one rule: its head predicate and
// the predicates its body references. Dependencies on predicates that
// are not the head of any rule are treated as extensional (fixed at
// stratum 0); a negated dependency on such a predicate still lifts the
// head to stratum 1, which is harmless but keeps the bound uniform.
// Callers for which negation on extensional predicates needs no
// stratification (the facts are fully known up front) should filter
// those dependencies out before calling Solve.
type Rule struct {
	Head string
	Deps []Dep
}

// Solve assigns a stratum number to every head predicate, or returns
// ErrNotStratifiable. The iteration is the standard fixpoint: a head
// must sit at least as high as each positive dependency and strictly
// higher than each negative one; any predicate forced above the number
// of intensional predicates is on a negative cycle.
func Solve(rules []Rule) (map[string]int, error) {
	stratum := map[string]int{}
	for _, r := range rules {
		stratum[r.Head] = 0
	}
	n := len(stratum)
	for iter := 0; ; iter++ {
		if iter > n+1 {
			return nil, ErrNotStratifiable
		}
		changed := false
		for _, r := range rules {
			h := stratum[r.Head]
			for _, d := range r.Deps {
				need, idb := stratum[d.Pred]
				if !idb {
					need = 0
				}
				if d.Negated {
					need++
				}
				if h < need {
					stratum[r.Head] = need
					h = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return stratum, nil
}

// Partition groups rules into the weakly connected components of the
// dependency graph: two rules share a component when they share a head
// predicate, or when one's head appears among the other's intensional
// dependencies (directly or transitively). Dependencies on extensional
// predicates — those that head no rule — do not connect components:
// extensional facts are fixed inputs, so rule sets that only share them
// can be solved independently (and, by the caller, concurrently).
//
// The result is a list of rule-index groups: components appear in the
// order of their first rule, and each group lists its rule indices in
// input order, so a caller that solves the groups in sequence visits
// the rules in exactly the original order.
func Partition(rules []Rule) [][]int {
	heads := make(map[string]bool, len(rules))
	for _, r := range rules {
		heads[r.Head] = true
	}
	// Union-find over predicate names.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, r := range rules {
		for _, d := range r.Deps {
			if heads[d.Pred] {
				union(r.Head, d.Pred)
			}
		}
	}
	index := map[string]int{}
	var out [][]int
	for i, r := range rules {
		root := find(r.Head)
		gi, ok := index[root]
		if !ok {
			gi = len(out)
			index[root] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], i)
	}
	return out
}

// Height returns the number of strata (1 + the maximum stratum number),
// or 0 for an empty assignment.
func Height(stratum map[string]int) int {
	max := -1
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	return max + 1
}
