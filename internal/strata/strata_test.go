package strata_test

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/elog"
	"repro/internal/strata"
)

func TestSolveLayersNegationChain(t *testing.T) {
	rules := []strata.Rule{
		{Head: "a", Deps: []strata.Dep{{Pred: "edb"}}},
		{Head: "b", Deps: []strata.Dep{{Pred: "a", Negated: true}}},
		{Head: "c", Deps: []strata.Dep{{Pred: "b"}, {Pred: "a"}}},
		{Head: "d", Deps: []strata.Dep{{Pred: "c", Negated: true}, {Pred: "b", Negated: true}}},
	}
	got, err := strata.Solve(rules)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2}
	for head, s := range want {
		if got[head] != s {
			t.Errorf("stratum[%s] = %d, want %d (all: %v)", head, got[head], s, got)
		}
	}
	if h := strata.Height(got); h != 3 {
		t.Errorf("Height = %d, want 3", h)
	}
}

func TestSolveRejectsNegativeCycle(t *testing.T) {
	rules := []strata.Rule{
		{Head: "p", Deps: []strata.Dep{{Pred: "q", Negated: true}}},
		{Head: "q", Deps: []strata.Dep{{Pred: "p"}}},
	}
	if _, err := strata.Solve(rules); err == nil {
		t.Fatal("negative cycle accepted")
	}
	// A purely positive cycle is fine.
	rules = []strata.Rule{
		{Head: "p", Deps: []strata.Dep{{Pred: "q"}}},
		{Head: "q", Deps: []strata.Dep{{Pred: "p"}}},
	}
	if _, err := strata.Solve(rules); err != nil {
		t.Fatalf("positive cycle rejected: %v", err)
	}
}

// TestEnginesAgree cross-checks the two engines that stratify through
// this package: structurally equivalent programs — the same dependency
// graph spelled once in datalog syntax and once in Elog syntax — must
// come out with identical per-head stratum assignments, so the engines
// cannot drift.
func TestEnginesAgree(t *testing.T) {
	cases := []struct {
		name    string
		datalog string
		elog    string
		want    map[string]int
	}{
		{
			name: "negation-chain",
			datalog: `
a(X) :- leaf(X).
b(X) :- a(X).
c(X) :- b(X), not a(X).
d(X) :- c(X), not b(X), a(X).
`,
			elog: `
a(S, X) <- document("u", S), subelem(S, .body, X)
b(S, X) <- a(_, S), subelem(S, .td, X)
c(S, X) <- b(_, S), subelem(S, .td, X), not a(_, X)
d(S, X) <- c(_, S), subelem(S, .td, X), not b(_, X), a(_, X)
`,
			want: map[string]int{"a": 0, "b": 0, "c": 1, "d": 1},
		},
		{
			name: "diamond",
			datalog: `
a(X) :- leaf(X).
b(X) :- a(X), not a(X).
c(X) :- a(X).
d(X) :- b(X), c(X).
`,
			elog: `
a(S, X) <- document("u", S), subelem(S, .body, X)
b(S, X) <- a(_, S), subelem(S, .td, X), not a(_, X)
c(S, X) <- a(_, S), subelem(S, .td, X)
d(S, X) <- b(_, S), subelem(S, .td, X), c(_, X)
`,
			want: map[string]int{"a": 0, "b": 1, "c": 0, "d": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dp, err := datalog.Parse(tc.datalog)
			if err != nil {
				t.Fatal(err)
			}
			dStrata, err := datalog.Stratify(dp)
			if err != nil {
				t.Fatal(err)
			}
			dAt := map[string]int{}
			for i, rules := range dStrata {
				for _, r := range rules {
					dAt[r.Head.Pred] = i
				}
			}
			ep, err := elog.Parse(tc.elog)
			if err != nil {
				t.Fatal(err)
			}
			eStrata, err := elog.Stratify(ep)
			if err != nil {
				t.Fatal(err)
			}
			eAt := map[string]int{}
			for i, rules := range eStrata {
				for _, r := range rules {
					eAt[r.Head] = i
				}
			}
			for head, want := range tc.want {
				if dAt[head] != want {
					t.Errorf("datalog stratum[%s] = %d, want %d", head, dAt[head], want)
				}
				if eAt[head] != want {
					t.Errorf("elog stratum[%s] = %d, want %d", head, eAt[head], want)
				}
			}
		})
	}
}

// TestEnginesAgreeOnRejection checks both engines reject the same
// negative cycle.
func TestEnginesAgreeOnRejection(t *testing.T) {
	dp, err := datalog.Parse(`
p(X) :- leaf(X), not q(X).
q(X) :- leaf(X), not p(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datalog.Stratify(dp); err == nil {
		t.Error("datalog accepted a negative cycle")
	}
	ep, err := elog.Parse(`
p(S, X) <- document("u", S), subelem(S, .body, X), not q(_, X)
q(S, X) <- document("u", S), subelem(S, .body, X), not p(_, X)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := elog.Stratify(ep); err == nil {
		t.Error("elog accepted a negative cycle")
	}
}
