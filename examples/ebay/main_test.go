package main

import (
	"context"
	"testing"

	"repro/internal/web"
	"repro/pkg/lixto"
)

// The Figure 5 wrapper (with the crawling extension) compiles and
// extracts through the public SDK, following the next-page link across
// the simulated site.
func TestFigure5Wrapper(t *testing.T) {
	sim := web.New()
	site := web.NewAuctionSite(2004, 40) // two pages of 25 + 15
	site.Register(sim, "www.ebay.com")

	w, err := lixto.Compile(figure5,
		lixto.WithFetcher(sim),
		lixto.WithAuxiliary("tableseq", "tableseq2", "nextlink", "nexturl", "nextpage"),
		lixto.WithRoot("auctions"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Extract(context.Background(), lixto.Origin())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances("record")); got != len(site.Items) {
		t.Fatalf("records: got %d, want %d", got, len(site.Items))
	}
	if got := len(res.XML().Find("record")); got != len(site.Items) {
		t.Fatalf("records in XML: got %d, want %d", got, len(site.Items))
	}
	if got := len(res.Instances("price")); got == 0 {
		t.Fatal("no prices extracted")
	}
}
