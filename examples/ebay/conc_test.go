package main

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/web"
	"repro/pkg/lixto"
)

// TestFigure5ConcurrencyDeterminism extracts the crawling Figure 5
// wrapper at concurrency 1 and GOMAXPROCS and requires byte-identical
// instance bases: the parallel crawl frontier and wave-parallel rule
// evaluation must not change ids, parents, or dedup decisions.
func TestFigure5ConcurrencyDeterminism(t *testing.T) {
	run := func(conc int) string {
		sim := web.New()
		site := web.NewAuctionSite(2004, 40)
		site.Register(sim, "www.ebay.com")
		w, err := lixto.Compile(figure5,
			lixto.WithFetcher(sim),
			lixto.WithAuxiliary("tableseq", "tableseq2", "nextlink", "nexturl", "nextpage"),
			lixto.WithRoot("auctions"),
			lixto.WithConcurrency(conc))
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Extract(context.Background(), lixto.Origin())
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		return res.Base.Dump()
	}
	want := run(1)
	if got := run(runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("parallel base diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}
