package main

import (
	"context"
	"testing"

	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

// TestFigure5IncrementalDifferential re-extracts the crawling Figure 5
// wrapper over a churning auction site and requires the incremental
// wrapper (one compiled program held across versions, with incremental
// output on) to produce an instance base — and rendered XML —
// byte-identical to a cold, non-incremental extraction of each version,
// including versions whose structural mutations knock pages out of
// document order and force the full-matching fallback.
func TestFigure5IncrementalDifferential(t *testing.T) {
	sim := web.New()
	site := web.NewAuctionSite(2004, 40)
	site.Register(sim, "www.ebay.com")
	churn := &web.ChurnFetcher{Inner: sim, Seed: 12, PerStep: 5, Grow: true}

	opts := []lixto.Option{
		lixto.WithFetcher(churn),
		lixto.WithAuxiliary("tableseq", "tableseq2", "nextlink", "nexturl", "nextpage"),
		lixto.WithRoot("auctions"),
	}
	w, err := lixto.Compile(figure5, append(opts, lixto.WithIncrementalOutput(true))...)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		cold, err := lixto.Compile(figure5, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := cold.Extract(context.Background(), lixto.Origin(), lixto.WithIncremental(false))
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		gotRes, err := w.Extract(context.Background(), lixto.Origin())
		if err != nil {
			t.Fatalf("step %d incremental: %v", step, err)
		}
		if want, got := wantRes.Base.Dump(), gotRes.Base.Dump(); got != want {
			t.Errorf("step %d: incremental base diverges from cold extraction:\n--- cold ---\n%s--- incremental ---\n%s", step, want, got)
		}
		if want, got := xmlenc.MarshalIndent(wantRes.XML()), xmlenc.MarshalIndent(gotRes.XML()); got != want {
			t.Errorf("step %d: incremental XML diverges from cold rebuild:\n--- cold ---\n%s--- incremental ---\n%s", step, want, got)
		}
		churn.Advance()
	}
}
