// Command ebay runs the extraction program of Figure 5 of the paper —
// the eBay wrapper — against a simulated auction site, including
// crawling across result pages, and prints the integrated XML.
//
//	go run ./examples/ebay
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// figure5 is the Elog program of Figure 5 (pattern names normalized; the
// bids rule descends with ?.td since cells sit below tr). The extra
// next/nextdoc rules add the paper's Web-crawling feature: the wrapper
// follows "next page" links and keeps extracting.
const figure5 = `
tableseq(S, X) <- document("www.ebay.com/", S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq(_, S), subelem(S, .table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
price(S, X) <- record(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
bids(S, X) <- record(_, S), subelem(S, ?.td, X), before(S, X, ?.td, 0, 30, Y, _), price(_, Y)
currency(S, X) <- price(_, S), subtext(S, \var[Y], X), isCurrency(Y)

% Crawling: follow the next-page link and wrap the next page the same way.
nextlink(S, X) <- document("www.ebay.com/", S), subelem(S, (?.a, [(class, next, exact)]), X)
nexturl(S, X) <- nextlink(_, S), subatt(S, href, X)
nextpage(S, X) <- nexturl(_, S), getDocument(S, X)
tableseq2(S, X) <- nextpage(_, S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq2(_, S), subelem(S, .table, X)
`

func main() {
	sim := web.New()
	site := web.NewAuctionSite(2004, 40) // two pages of 25 + 15
	site.Register(sim, "www.ebay.com")

	w, err := core.CompileWrapper(figure5)
	if err != nil {
		log.Fatal(err)
	}
	w.SetAuxiliary("tableseq", "tableseq2", "nextlink", "nexturl", "nextpage")
	w.Design.RootName = "auctions"

	xml, err := w.Wrap(sim)
	if err != nil {
		log.Fatal(err)
	}
	records := xml.Find("record")
	fmt.Printf("extracted %d records from %d items across %d page fetches\n\n",
		len(records), len(site.Items), sim.FetchCount("www.ebay.com/")+sim.FetchCount("www.ebay.com/page1.html"))
	for i, r := range records {
		if i >= 5 {
			fmt.Printf("... (%d more)\n", len(records)-5)
			break
		}
		fmt.Println(xmlenc.Marshal(r))
	}
}
