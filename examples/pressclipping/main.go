// Command pressclipping runs the financial-news application of
// Section 6.3: press articles are wrapped, converted to NITF (News
// Industry Text Format), aggregated with the latest stock quotes, and
// republished as a feed.
//
//	go run ./examples/pressclipping
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/xmlenc"
)

func main() {
	app, err := apps.NewPressClipping(2004)
	if err != nil {
		log.Fatal(err)
	}
	app.Engine.Tick()
	if app.Out.Len() == 0 {
		log.Fatalf("no publication (errors: %v)", app.Engine.Errors)
	}
	feed := app.Out.Docs()[0]
	nitfs := feed.Find("nitf")
	fmt.Printf("published %d NITF documents\n\n", len(nitfs))
	for i, n := range nitfs {
		if i >= 2 {
			fmt.Printf("... (%d more)\n", len(nitfs)-2)
			break
		}
		fmt.Println(xmlenc.MarshalIndent(n))
	}
	// Breaking news: publish and re-tick.
	app.Step(true, 7)
	feed2 := app.Out.Latest()
	fmt.Printf("after publishing one more article: %d NITF documents\n", len(feed2.Find("nitf")))
}
