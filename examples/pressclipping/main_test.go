package main

import (
	"testing"

	"repro/internal/apps"
)

// The press-clipping pipeline publishes NITF documents and picks up a
// breaking article on the next tick.
func TestPressClippingPublishes(t *testing.T) {
	app, err := apps.NewPressClipping(2004)
	if err != nil {
		t.Fatal(err)
	}
	app.Engine.Tick()
	if app.Out.Len() == 0 {
		t.Fatalf("no publication (errors: %v)", app.Engine.Errors)
	}
	before := len(app.Out.Latest().Find("nitf"))
	if before == 0 {
		t.Fatal("feed has no NITF documents")
	}
	app.Step(true, 7)
	after := len(app.Out.Latest().Find("nitf"))
	if after != before+1 {
		t.Fatalf("breaking news not published: %d -> %d NITF docs", before, after)
	}
}
