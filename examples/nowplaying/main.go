// Command nowplaying runs the "Now Playing" mobile-entertainment service
// of Section 6.1: wrappers over 14 simulated sites (radio stations,
// music charts, a lyrics server), integrated by the Transformation
// Server into a PDA portal feed; the simulation advances a few steps and
// prints each portal update.
//
//	go run ./examples/nowplaying
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/xmlenc"
)

func main() {
	app, err := apps.NewNowPlaying(2004)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Now Playing: %d wrapped sources (radio / charts / lyrics)\n\n", app.SourceCount())
	for step := 1; step <= 3; step++ {
		app.Step()
		docs := app.Portal.Docs()
		if len(docs) == 0 {
			log.Fatalf("no portal output (errors: %v)", app.Engine.Errors)
		}
		portal := docs[len(docs)-1]
		fmt.Printf("=== portal update %d ===\n", step)
		for _, st := range portal.Find("station") {
			name, _ := st.Attr("name")
			song := st.FirstChild("song").Text
			artist := st.FirstChild("artist").Text
			fmt.Printf("  %-14s %s — %s", name, song, artist)
			for _, r := range st.ChildrenNamed("ranking") {
				chart, _ := r.Attr("chart")
				fmt.Printf("  [#%s in %s]", r.Text, chart)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	// The full XML of the last update, as a mobile syndication layer
	// would consume it.
	last := app.Portal.Latest()
	fmt.Println("last update as XML (first station):")
	if sts := last.Find("station"); len(sts) > 0 {
		fmt.Println(xmlenc.MarshalIndent(sts[0]))
	}
}
