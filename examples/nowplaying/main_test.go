package main

import (
	"testing"

	"repro/internal/apps"
)

// The Now Playing pipeline (whose wrappers the example hosts) produces
// a portal update with stations and rankings on every step.
func TestNowPlayingSteps(t *testing.T) {
	app, err := apps.NewNowPlaying(2004)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		app.Step()
	}
	if app.Portal.Len() == 0 {
		t.Fatalf("no portal output (errors: %v)", app.Engine.Errors)
	}
	portal := app.Portal.Latest()
	if stations := portal.Find("station"); len(stations) == 0 {
		t.Fatal("portal update has no stations")
	}
}
