// Command flightinfo runs the flight schedule information service of
// Section 6.2: the user subscribes to flights, the pipeline polls the
// airport site, and an "SMS" is delivered only when a subscribed
// flight's status changes between consecutive requests.
//
//	go run ./examples/flightinfo
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	subs := []apps.Subscription{
		{Number: "OS105"},
		{From: "Vienna", To: "London"},
	}
	app, err := apps.NewFlightInfo(2004, subs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscriptions: OS105; Vienna -> London")
	fmt.Println()
	smsSeen := 0
	for step := 0; step < 20; step++ {
		app.Step(step > 0) // the airport state changes between polls
		if app.SMS.Len() > smsSeen {
			smsSeen = app.SMS.Len()
			fmt.Printf("step %2d  SMS: %s\n", step, app.LastMessage())
		} else {
			fmt.Printf("step %2d  (no change, no SMS)\n", step)
		}
	}
	fmt.Printf("\n%d polls, %d SMS deliveries — messages only on change\n", 20, app.SMS.Len())
}
