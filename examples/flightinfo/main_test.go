package main

import (
	"testing"

	"repro/internal/apps"
)

// The flight-info pipeline delivers an SMS only when a subscribed
// flight's status changes between polls.
func TestFlightInfoDeliversOnChange(t *testing.T) {
	app, err := apps.NewFlightInfo(2004, []apps.Subscription{
		{Number: "OS105"},
		{From: "Vienna", To: "London"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		app.Step(step > 0)
	}
	if app.SMS.Len() == 0 {
		t.Fatalf("no SMS deliveries in 20 steps (errors: %v)", app.Engine.Errors)
	}
	if app.SMS.Len() >= 20 {
		t.Fatalf("SMS on every poll (%d/20): change detection not working", app.SMS.Len())
	}
}
