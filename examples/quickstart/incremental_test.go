package main

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dom"
	"repro/internal/htmlparse"
	"repro/pkg/lixto"
)

// TestQuickstartIncrementalDifferential pins the SDK contract that
// WithIncremental changes work, never output: re-extracting mutated
// versions of the quickstart page through one long-lived wrapper (whose
// subtree caches persist across calls) yields instance bases
// byte-identical to cold, non-incremental extraction of each version.
func TestQuickstartIncrementalDifferential(t *testing.T) {
	opts := []lixto.Option{lixto.WithAuxiliary("page"), lixto.WithRoot("books")}
	w, err := lixto.Compile(wrapper, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	cur := htmlparse.Parse(page)
	for step := 0; step < 6; step++ {
		cold, err := lixto.Compile(wrapper, opts...)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := cold.Extract(context.Background(), lixto.Tree(cur), lixto.WithIncremental(false))
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		gotRes, err := w.Extract(context.Background(), lixto.Tree(cur))
		if err != nil {
			t.Fatalf("step %d incremental: %v", step, err)
		}
		if want, got := wantRes.Base.Dump(), gotRes.Base.Dump(); got != want {
			t.Errorf("step %d: incremental base diverges from cold extraction:\n--- cold ---\n%s--- incremental ---\n%s", step, want, got)
		}
		next := cur.Clone()
		dom.Mutate(next, rng, 3)
		cur = next
	}
}
