package main

import (
	"context"
	"runtime"
	"testing"

	"repro/pkg/lixto"
)

// TestQuickstartConcurrencyDeterminism pins the SDK contract that
// WithConcurrency changes scheduling, never output: the quickstart
// wrapper's instance base is byte-identical at any concurrency.
func TestQuickstartConcurrencyDeterminism(t *testing.T) {
	w, err := lixto.Compile(wrapper, lixto.WithAuxiliary("page"), lixto.WithRoot("books"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(conc int) string {
		res, err := w.Extract(context.Background(), lixto.HTML(page), lixto.WithConcurrency(conc))
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		return res.Base.Dump()
	}
	want := run(1)
	if got := run(runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("parallel base diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}
