// Command quickstart is the five-minute tour: compile an Elog wrapper
// with the public SDK (repro/pkg/lixto), run it against a page, and
// print the extracted XML.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

// A bestseller page as a bookshop might serve it.
const page = `
<html><body>
  <h1>Staff picks</h1>
  <table class="books">
    <tr class="book"><td class="title">Foundations of Databases</td><td class="price">$ 54.00</td></tr>
    <tr class="book"><td class="title">Monadic Datalog and Web Information Extraction</td><td class="price">$ 12.00</td></tr>
    <tr class="book"><td class="title">The Complexity of XPath</td><td class="price">$ 9.50</td></tr>
  </table>
</body></html>`

// The wrapper: an Elog program in the language of Section 3.3 of the
// Lixto paper. Patterns are binary predicates over (parent instance,
// instance); subelem extracts tree nodes by element path definitions.
const wrapper = `
page(S, X)  <- document("shop", S), subelem(S, .body, X)
book(S, X)  <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`

func main() {
	// page is an auxiliary pattern: it structures the wrapper but should
	// not appear in the output XML.
	w, err := lixto.Compile(wrapper,
		lixto.WithAuxiliary("page"),
		lixto.WithRoot("books"))
	if err != nil {
		log.Fatal(err)
	}

	res, err := w.Extract(context.Background(), lixto.HTML(page))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(xmlenc.MarshalIndent(res.XML()))

	// The same document is queryable with XPath and monadic datalog.
	doc := core.ParseHTML(page)
	cheap, err := core.XPath(doc, "//tr[td[@class='price'] and count(td)=2]/td[1]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXPath found %d title cells\n", len(cheap))

	titles, err := core.MonadicDatalog(doc, `
intable(X) :- label_table(X0), child(X0, X).
intable(X) :- intable(X0), child(X0, X).
cell(X) :- intable(X), label_td(X).
`, "cell")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monadic datalog found %d table cells\n", len(titles))
}
