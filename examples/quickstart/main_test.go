package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

// The quickstart wrapper compiles and extracts through the public SDK.
func TestQuickstartWrapper(t *testing.T) {
	w, err := lixto.Compile(wrapper, lixto.WithAuxiliary("page"), lixto.WithRoot("books"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Extract(context.Background(), lixto.HTML(page))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances("book")); got != 3 {
		t.Fatalf("books: got %d, want 3", got)
	}
	xml := xmlenc.MarshalIndent(res.XML())
	if !strings.Contains(xml, "<books>") || !strings.Contains(xml, "The Complexity of XPath") {
		t.Fatalf("unexpected XML:\n%s", xml)
	}
	for _, pat := range []string{"title", "price"} {
		if got := len(res.Instances(pat)); got != 3 {
			t.Fatalf("%s: got %d, want 3", pat, got)
		}
	}
}
