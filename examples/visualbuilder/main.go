// Command visualbuilder demonstrates the visual wrapper-specification
// process of Section 3.2 (Figure 3): a wrapper for a bestseller site is
// built from text selections ("mouse clicks") only — the user never
// writes a line of Elog; the program is generated, refined, tested, and
// finally applied to a held-out page.
//
//	go run ./examples/visualbuilder
package main

import (
	"fmt"
	"log"

	"repro/internal/elog"
	"repro/internal/visual"
	"repro/internal/web"
)

func main() {
	sim := web.New()
	site := web.NewBookSite(2004, 8)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		log.Fatal(err)
	}

	s := visual.NewSession(doc, "books.example.com/bestsellers.html")
	if err := s.AddDocumentPattern("page"); err != nil {
		log.Fatal(err)
	}

	// The user highlights the first book's title on screen.
	region, ok := s.FindText(site.Books[0].Title)
	if !ok {
		log.Fatal("example title not on page")
	}
	rule, err := s.AddPattern("title", "page", region)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rule generated from the click:")
	fmt.Println("  " + rule.String())

	// Too specific (matches only the example row): generalize the path.
	if err := s.GeneralizePath("title", 2); err != nil {
		log.Fatal(err)
	}
	// Now too general (matches every cell): restrict by the class
	// attribute.
	if err := s.RequireAttribute("title", "class", "title", "exact"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after generalize + attribute refinement:")
	fmt.Println("  " + rule.String())

	counts, err := s.Test()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntest on the example page: %d title instances (%d books)\n", counts["title"], len(site.Books))
	fmt.Printf("user interactions so far: %d\n\n", s.Interactions)

	// Apply the generated program to a page never seen during design.
	heldOut := web.New()
	web.NewBookSite(4071, 20).Register(heldOut, "books.example.com")
	base, err := elog.NewEvaluator(heldOut).Run(s.Program())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out page: %d titles extracted\n", len(base.Instances("title")))
	for i, in := range base.Instances("title") {
		if i >= 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", in.TextContent())
	}
}
