package main

import (
	"context"
	"testing"

	"repro/internal/visual"
	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

// TestGeneratedWrapperIncrementalDifferential runs a visually generated
// wrapper against a churning held-out site and requires incremental
// extraction (one wrapper held across versions, with incremental output
// on) to match cold, non-incremental extraction of every version byte
// for byte — the instance base and the rendered XML both.
func TestGeneratedWrapperIncrementalDifferential(t *testing.T) {
	sim := web.New()
	site := web.NewBookSite(2004, 8)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	s := visual.NewSession(doc, "books.example.com/bestsellers.html")
	if err := s.AddDocumentPattern("page"); err != nil {
		t.Fatal(err)
	}
	region, ok := s.FindText(site.Books[0].Title)
	if !ok {
		t.Fatal("example title not on page")
	}
	if _, err := s.AddPattern("title", "page", region); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("title", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAttribute("title", "class", "title", "exact"); err != nil {
		t.Fatal(err)
	}
	src := s.Program().String()

	heldOut := web.New()
	web.NewBookSite(4071, 20).Register(heldOut, "books.example.com")
	churn := &web.ChurnFetcher{Inner: heldOut, Seed: 6, PerStep: 4}

	w, err := lixto.Compile(src, lixto.WithAuxiliary("page"), lixto.WithFetcher(churn),
		lixto.WithIncrementalOutput(true))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		cold, err := lixto.Compile(src, lixto.WithAuxiliary("page"), lixto.WithFetcher(churn))
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := cold.Extract(context.Background(), lixto.Origin(), lixto.WithIncremental(false))
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		gotRes, err := w.Extract(context.Background(), lixto.Origin())
		if err != nil {
			t.Fatalf("step %d incremental: %v", step, err)
		}
		if want, got := wantRes.Base.Dump(), gotRes.Base.Dump(); got != want {
			t.Errorf("step %d: incremental base diverges from cold extraction:\n--- cold ---\n%s--- incremental ---\n%s", step, want, got)
		}
		if want, got := xmlenc.MarshalIndent(wantRes.XML()), xmlenc.MarshalIndent(gotRes.XML()); got != want {
			t.Errorf("step %d: incremental XML diverges from cold rebuild:\n--- cold ---\n%s--- incremental ---\n%s", step, want, got)
		}
		churn.Advance()
	}
}
