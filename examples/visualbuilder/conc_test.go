package main

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/visual"
	"repro/internal/web"
	"repro/pkg/lixto"
)

// TestGeneratedWrapperConcurrencyDeterminism runs a visually generated
// wrapper against a held-out site at concurrency 1 and GOMAXPROCS and
// requires byte-identical instance bases.
func TestGeneratedWrapperConcurrencyDeterminism(t *testing.T) {
	sim := web.New()
	site := web.NewBookSite(2004, 8)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	s := visual.NewSession(doc, "books.example.com/bestsellers.html")
	if err := s.AddDocumentPattern("page"); err != nil {
		t.Fatal(err)
	}
	region, ok := s.FindText(site.Books[0].Title)
	if !ok {
		t.Fatal("example title not on page")
	}
	if _, err := s.AddPattern("title", "page", region); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("title", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAttribute("title", "class", "title", "exact"); err != nil {
		t.Fatal(err)
	}
	src := s.Program().String()

	run := func(conc int) string {
		w, err := lixto.Compile(src, lixto.WithAuxiliary("page"), lixto.WithConcurrency(conc))
		if err != nil {
			t.Fatal(err)
		}
		heldOut := web.New()
		web.NewBookSite(4071, 20).Register(heldOut, "books.example.com")
		res, err := w.Extract(context.Background(), lixto.Origin(), lixto.WithFetcher(heldOut))
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		return res.Base.Dump()
	}
	want := run(1)
	if got := run(runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("parallel base diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}
