package main

import (
	"context"
	"testing"

	"repro/internal/visual"
	"repro/internal/web"
	"repro/pkg/lixto"
)

// The visually generated wrapper round-trips through its concrete
// syntax into the public SDK and extracts from a held-out page.
func TestGeneratedWrapperThroughSDK(t *testing.T) {
	sim := web.New()
	site := web.NewBookSite(2004, 8)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	s := visual.NewSession(doc, "books.example.com/bestsellers.html")
	if err := s.AddDocumentPattern("page"); err != nil {
		t.Fatal(err)
	}
	region, ok := s.FindText(site.Books[0].Title)
	if !ok {
		t.Fatal("example title not on page")
	}
	if _, err := s.AddPattern("title", "page", region); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("title", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAttribute("title", "class", "title", "exact"); err != nil {
		t.Fatal(err)
	}

	// Round-trip: the generated program's concrete syntax compiles in
	// the SDK and extracts every title from a page never seen during
	// design.
	w, err := lixto.Compile(s.Program().String(), lixto.WithAuxiliary("page"))
	if err != nil {
		t.Fatalf("generated program did not compile through the SDK: %v\n%s", err, s.Program())
	}
	heldOut := web.New()
	site2 := web.NewBookSite(4071, 20)
	site2.Register(heldOut, "books.example.com")
	res, err := w.Extract(context.Background(), lixto.Origin(), lixto.WithFetcher(heldOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances("title")); got != len(site2.Books) {
		t.Fatalf("held-out titles: got %d, want %d", got, len(site2.Books))
	}
}
