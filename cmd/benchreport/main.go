// Command benchreport regenerates the experiment tables of
// EXPERIMENTS.md: for each experiment id it runs the workload at several
// parameter points, measures wall-clock time (median of runs), and
// prints the series whose *shape* reproduces the corresponding claim of
// the paper (linear scaling, polynomial-vs-exponential crossovers,
// extraction accuracy, click counts).
//
// With -json PATH the command additionally runs a fixed set of named
// benchmarks under testing.Benchmark and writes a machine-readable
// report (benchmark name → ns/op, allocs/op, B/op) so that the perf
// trajectory can be tracked across commits, e.g.
//
//	go run ./cmd/benchreport -quick -json BENCH_report.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/htmlparse"
	"repro/internal/mdatalog"
	"repro/internal/pib"
	"repro/internal/resultlog"
	"repro/internal/server"
	"repro/internal/transform"
	"repro/internal/visual"
	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/internal/xpath"
)

var (
	quick    = flag.Bool("quick", false, "fewer repetitions")
	jsonPath = flag.String("json", "", "write a BENCH_*.json report to this path")
)

func main() {
	flag.Parse()
	e2MonadicLinear()
	e3GenericVsTree()
	e7VisualClicks()
	e8EbayAccuracy()
	e9CoreXPathLinear()
	e10NaiveVsPolynomial()
	e11Dichotomy()
	e12TranslationSizes()
	e18ElogCompiled()
	e19DynamicRegister()
	e20SharedFetch()
	e21BatchedFleet()
	e22WatchFanout()
	e23LockFreeReads()
	e24ChurnIncremental()
	e25DurableDelivery()
	e26ChurnEndToEnd()
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}

// benchEntry is one row of the JSON report.
type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// writeBenchJSON measures the tracked workloads with testing.Benchmark
// and writes {name: {ns_per_op, allocs_per_op, bytes_per_op}}.
func writeBenchJSON(path string) error {
	report := map[string]benchEntry{}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report[name] = benchEntry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	itp := mdatalog.ItalicProgram()
	for _, size := range []int{2000, 8000, 32000} {
		tr := dom.RandomTree(rand.New(rand.NewSource(2)), size, []string{"a", "i", "b"}, 6)
		add(fmt.Sprintf("E02_MonadicDatalogEval/dom-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mdatalog.Eval(itp, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	xq := xpath.MustParse("//div[span and not(b)]//span")
	xtr := deepDivs(300)
	add("E09_CoreXPathLinear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xpath.EvalCore(xq, xtr, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	compiled := xpath.CompilePath(xq)
	add("E09_CoreXPathCompiledCached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := compiled.EvalCached(xtr); err != nil {
				b.Fatal(err)
			}
		}
	})

	// End-to-end Elog: the Figure 5 eBay wrapper on a fixed pre-parsed
	// page — seed interpreter vs compiled bitset execution, cold and
	// with a warm fingerprint-keyed match cache (the repeated
	// extraction of an unchanged page that the server performs every
	// tick).
	eprog := elog.MustParse(ebayFigure5)
	fetch, err := ebayFetcher(50)
	if err != nil {
		return err
	}
	add("E18_ElogEbay/interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := elog.NewEvaluator(fetch).Run(eprog); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("E18_ElogEbay/compiled-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := elog.NewEvaluator(fetch).RunCompiled(elog.MustCompile(eprog)); err != nil {
				b.Fatal(err)
			}
		}
	})
	ecp := elog.MustCompile(eprog)
	if _, err := elog.NewEvaluator(fetch).RunCompiled(ecp); err != nil { // warm the cache
		return err
	}
	add("E18_ElogEbay/compiled-cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := elog.NewEvaluator(fetch).RunCompiled(ecp); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Dynamic registration over the /v1 API: one POST is compile +
	// register + first extraction; the warm path re-extracts an
	// unchanged page through the fingerprint-keyed match caches.
	e19ts := v1Server()
	e19page := e19Page(50)
	e19i := 0
	add("E19_DynamicRegister/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e19Cold(e19ts, e19page, e19i)
			e19i++
		}
	})
	v1Post(e19ts.URL+"/v1/wrappers", map[string]any{
		"name": "warmjson", "program": ebayFigure5, "html": e19page,
		"auxiliary": []string{"tableseq"},
	})
	add("E19_DynamicRegister/warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v1Post(e19ts.URL+"/v1/wrappers/warmjson/extract", map[string]any{})
		}
	})
	e19ts.Close()

	// Shared fetch layer: one fleet polling round, per-wrapper fetching
	// vs the shared cache (E20).
	e20priv, _ := e20Fleet(1000, 50, nil)
	pollFleet(e20priv)
	add("E20_SharedFetch/private-1000x50", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pollFleet(e20priv)
		}
	})
	e20shared, _ := e20Fleet(1000, 50, fetchcache.New(100, time.Hour))
	pollFleet(e20shared)
	add("E20_SharedFetch/shared-1000x50", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pollFleet(e20shared)
		}
	})

	// Batched fleet extraction (E21): one poll round of 100 wrappers
	// over one shared, churning page.
	e21priv := e21Round(100, false)
	add("E21_BatchedFleet/per-wrapper-100x1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e21priv()
		}
	})
	e21batch := e21Round(100, true)
	add("E21_BatchedFleet/batched-100x1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e21batch()
		}
	})

	// Encode-once delivery plane (E22/E23): the tick-commit cost with a
	// watch-subscriber fleet attached, and parallel read throughput of
	// the lock-free snapshot path vs a global-mutex baseline.
	e22p := newChurnPipe("hot22", 50)
	e22s := server.New(server.Config{WatchQueue: 16})
	if err := e22s.Register(e22p, time.Hour); err != nil {
		return err
	}
	e22h := e22s.Handler()
	deliverTick(e22p, e22h)
	add("E22_WatchFanout/poll-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			xmlenc.MarshalIndentBytes(e22p.out.Latest())
		}
	})
	add("E22_WatchFanout/changed-tick-0-watchers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			deliverTick(e22p, e22h)
		}
	})
	e22ts := httptest.NewServer(e22h)
	e22st := openWatchers(e22ts.URL, "hot22", 1000)
	add("E22_WatchFanout/changed-tick-1000-watchers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base := e22st.received.Load()
			deliverTick(e22p, e22h)
			// Drain the asynchronous SSE writes off the clock so each
			// iteration measures only the synchronous tick path.
			b.StopTimer()
			deadline := time.Now().Add(30 * time.Second)
			for e22st.received.Load() < base+1000 && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
			b.StartTimer()
		}
	})
	e22st.close()
	e22ts.Close()

	e23p := newChurnPipe("hot23", 50)
	e23mu, e23lf := e23Handlers(e23p)
	add("E23_LockFreeReads/mutexed-baseline", parallelGet(e23mu, "/hot23"))
	add("E23_LockFreeReads/snapshot", parallelGet(e23lf, "/hot23"))

	// Incremental extraction under churn (E24): each round rewrites a
	// contiguous ~5% window of the page; full re-evaluation vs
	// subtree-fingerprint reuse. The -eval pair measures pure evaluation
	// (page generation, parse and warm off the clock); the fleet pair is
	// a whole 100-wrapper poll round over one shared page.
	add("E24_ChurnIncremental/full-eval", e24Eval(false))
	add("E24_ChurnIncremental/incremental-eval", e24Eval(true))
	e24full := e24Round(100, false)
	add("E24_ChurnIncremental/fleet-full-100x1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e24full()
		}
	})
	e24inc := e24Round(100, true)
	add("E24_ChurnIncremental/fleet-incremental-100x1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e24inc()
		}
	})

	// Durable delivery (E25): the acknowledged publish path — one
	// changed tick plus the read that publishes it — in-memory vs
	// WAL-backed (batched fsync vs fsync-per-append: with a store
	// attached the snapshot is not served until the journal is drained
	// to the log), and the end-to-end webhook fan-out of one delivery
	// to 8 endpoints.
	for _, m := range []struct {
		key     string
		durable bool
		mode    resultlog.FsyncMode
	}{
		{"publish-mem", false, 0},
		{"publish-wal-batch", true, resultlog.FsyncBatch},
		{"publish-wal-always", true, resultlog.FsyncAlways},
	} {
		p, h, cleanup := e25Pipe("hot25", m.durable, m.mode)
		deliverTick(p, h)
		add("E25_DurableDelivery/"+m.key, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				deliverTick(p, h)
			}
		})
		cleanup()
	}
	// End-to-end incremental tick (E26): one long-lived wrapper over
	// the E24 churn workload; each iteration is one Poll plus the
	// encode of its document, with the page bump and parse off the
	// clock. full-tick re-evaluates, rebuilds the output tree and
	// re-encodes from scratch; incremental-tick diffs the instance
	// base, splices reused frozen output subtrees and re-encodes only
	// dirty byte ranges.
	for _, m := range []struct {
		key string
		inc bool
	}{
		{"full-tick", false},
		{"incremental-tick", true},
	} {
		adv, tick := e26Tick(m.inc)
		add("E26_ChurnEndToEnd/"+m.key, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				adv()
				b.StartTimer()
				tick()
			}
		})
	}

	e25fan, e25fanClean := e25Fanout(8)
	add("E25_DurableDelivery/webhook-fanout-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e25fan()
		}
	})
	e25fanClean()

	prog, qpred, err := xpath.TranslateCore(xq)
	if err != nil {
		return err
	}
	add("E12_XPathViaTMNF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.Query(prog, xtr, qpred); err != nil {
				b.Fatal(err)
			}
		}
	})

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// timeIt returns the median wall time of several runs of f.
func timeIt(f func()) time.Duration {
	d, _ := timeItN(f)
	return d
}

// timeItN is timeIt, additionally reporting how many times f ran (for
// callers that meter side effects per run).
func timeItN(f func()) (time.Duration, int) {
	runs := 5
	if *quick {
		runs = 3
	}
	var ds []time.Duration
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		f()
		ds = append(ds, time.Since(t0))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], runs
}

func header(id, title, claim string) {
	fmt.Printf("\n== %s: %s ==\n   paper: %s\n", id, title, claim)
}

func e2MonadicLinear() {
	header("E2", "monadic datalog over trees (Theorem 2.4)",
		"combined complexity O(|P|*|dom|): time per node constant as the tree grows")
	p := mdatalog.ItalicProgram()
	fmt.Printf("   %10s %12s %14s\n", "|dom|", "median", "ns/node")
	for _, size := range []int{2000, 4000, 8000, 16000, 32000} {
		tr := dom.RandomTree(rand.New(rand.NewSource(2)), size, []string{"a", "i", "b"}, 6)
		d := timeIt(func() {
			if _, err := mdatalog.Eval(p, tr); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %10d %12s %14.1f\n", size, d.Round(time.Microsecond), float64(d.Nanoseconds())/float64(size))
	}
	fmt.Printf("   %10s %12s %14s\n", "|P| rules", "median", "ns/rule")
	tr := dom.RandomTree(rand.New(rand.NewSource(2)), 4000, []string{"a", "b", "c"}, 6)
	for _, n := range []int{8, 16, 32, 64, 128} {
		prog := mdatalog.RandomProgram(rand.New(rand.NewSource(1)), 4, n, []string{"a", "b", "c"})
		d := timeIt(func() {
			if _, err := mdatalog.Eval(prog, tr); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %10d %12s %14.1f\n", n, d.Round(time.Microsecond), float64(d.Nanoseconds())/float64(n))
	}
}

func e3GenericVsTree() {
	header("E3", "tree-specialized vs generic datalog engine (Prop 2.3 vs Thm 2.4)",
		"the generic engine is polynomial but super-linear; the tree engine linear")
	p := mdatalog.ItalicProgram()
	fmt.Printf("   %10s %14s %14s %8s\n", "|dom|", "tree-engine", "generic", "ratio")
	for _, size := range []int{500, 1000, 2000, 4000} {
		tr := dom.RandomTree(rand.New(rand.NewSource(3)), size, []string{"a", "i"}, 5)
		dt := timeIt(func() { mustEval(p, tr) })
		dg := timeIt(func() {
			if _, err := mdatalog.EvalGeneric(p, tr); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %10d %14s %14s %8.1fx\n", size, dt.Round(time.Microsecond), dg.Round(time.Microsecond), float64(dg)/float64(dt))
	}
}

func mustEval(p *datalog.Program, tr *dom.Tree) {
	if _, err := mdatalog.Eval(p, tr); err != nil {
		panic(err)
	}
}

func e7VisualClicks() {
	header("E7", "visual wrapper specification (Figures 3/4)",
		"a full wrapper from a handful of gestures; 100% accuracy on held-out pages")
	sim := web.New()
	site := web.NewBookSite(21, 12)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		panic(err)
	}
	s := visual.NewSession(doc, "books.example.com/bestsellers.html")
	check(s.AddDocumentPattern("page"))
	for _, col := range []struct{ name, class, example string }{
		{"title", "title", site.Books[0].Title},
		{"author", "author", site.Books[0].Author},
		{"price", "price", site.Books[0].Price},
	} {
		r, _ := s.FindText(col.example)
		_, err := s.AddPattern(col.name, "page", r)
		check(err)
		check(s.GeneralizePath(col.name, 2))
		check(s.RequireAttribute(col.name, "class", col.class, "exact"))
	}
	counts, err := s.Test()
	check(err)
	fmt.Printf("   interactions: %d for a 3-field wrapper\n", s.Interactions)
	fmt.Printf("   example-page instances: title=%d author=%d price=%d (12 books)\n",
		counts["title"], counts["author"], counts["price"])
	held := web.New()
	site2 := web.NewBookSite(99, 30)
	site2.Register(held, "books.example.com")
	base, err := elog.NewEvaluator(held).Run(s.Program())
	check(err)
	correct := 0
	for i, in := range base.Instances("title") {
		if i < len(site2.Books) && strings.TrimSpace(in.TextContent()) == site2.Books[i].Title {
			correct++
		}
	}
	fmt.Printf("   held-out page (30 books): %d/%d titles correct (recall %.2f)\n",
		correct, len(site2.Books), float64(correct)/float64(len(site2.Books)))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

const ebayFigure5 = `
tableseq(S, X) <- document("www.ebay.com/", S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq(_, S), subelem(S, .table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
price(S, X) <- record(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
bids(S, X) <- record(_, S), subelem(S, ?.td, X), before(S, X, ?.td, 0, 30, Y, _), price(_, Y)
currency(S, X) <- price(_, S), subtext(S, \var[Y], X), isCurrency(Y)
`

func e8EbayAccuracy() {
	header("E8", "the eBay wrapper of Figure 5",
		"robust extraction of records/descriptions/prices/bids/currencies")
	prog := elog.MustParse(ebayFigure5)
	fmt.Printf("   %8s %7s %9s %7s %6s %9s %10s\n", "items", "noise", "records", "descr", "price", "bids", "recall")
	for _, tc := range []struct {
		n     int
		noise bool
	}{{10, false}, {50, false}, {50, true}, {200, true}} {
		site := web.NewAuctionSite(8, tc.n)
		site.PageSize = tc.n
		site.Noise = tc.noise
		sim := web.New()
		site.Register(sim, "www.ebay.com")
		base, err := elog.NewEvaluator(sim).Run(prog)
		check(err)
		rec := len(base.Instances("record"))
		des := len(base.Instances("itemdes"))
		pr := len(base.Instances("price"))
		bd := len(base.Instances("bids"))
		correct := 0
		for i, in := range base.Instances("itemdes") {
			if i < len(site.Items) && strings.TrimSpace(in.TextContent()) == site.Items[i].Description {
				correct++
			}
		}
		fmt.Printf("   %8d %7v %9d %7d %6d %9d %9.2f\n", tc.n, tc.noise, rec, des, pr, bd, float64(correct)/float64(tc.n))
	}
}

func e9CoreXPathLinear() {
	header("E9", "Core XPath linear evaluation (Section 4 / Figure 6 P row)",
		"O(|D|*|Q|) combined complexity: ns/node roughly constant")
	q := xpath.MustParse("//div[span and not(b)]//span")
	fmt.Printf("   %10s %12s %12s\n", "|D|", "median", "ns/node")
	for _, depth := range []int{100, 200, 400, 800} {
		tr := deepDivs(depth)
		d := timeIt(func() {
			if _, err := xpath.EvalCore(q, tr, nil); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %10d %12s %12.1f\n", tr.Size(), d.Round(time.Microsecond), float64(d.Nanoseconds())/float64(tr.Size()))
	}
}

func deepDivs(depth int) *dom.Tree {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < depth; i++ {
		b.WriteString("<div><span>x</span>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	b.WriteString("</body></html>")
	return htmlparse.Parse(b.String())
}

func e10NaiveVsPolynomial() {
	header("E10", "XPath is PTIME (Theorem 4.1 / [15])",
		"pre-2002 naive engines take time exponential in |Q|; set-based evaluation stays flat")
	tr := deepDivs(14)
	fmt.Printf("   %6s %16s %12s %12s\n", "steps", "naive", "linear", "cvt")
	for _, k := range []int{2, 3, 4, 5} {
		q := doubleSlash(k)
		dn := timeIt(func() {
			if _, err := xpath.EvalNaive(q, tr, nil); err != nil {
				panic(err)
			}
		})
		dl := timeIt(func() {
			if _, err := xpath.EvalCore(q, tr, nil); err != nil {
				panic(err)
			}
		})
		dc := timeIt(func() {
			if _, err := xpath.EvalFull(q, tr, nil); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %6d %16s %12s %12s\n", k, dn.Round(time.Microsecond), dl.Round(time.Microsecond), dc.Round(time.Microsecond))
	}
}

func doubleSlash(k int) *xpath.Path {
	parts := make([]string, k)
	for i := range parts {
		parts[i] = "div"
	}
	return xpath.MustParse("//" + strings.Join(parts, "//"))
}

func e11Dichotomy() {
	header("E11", "CQ-over-trees dichotomy (Section 4 / [18])",
		"axis sets within a maximal poly class evaluate in PTIME; Child+Child* mixes blow up in |Q|")
	tr := dom.RandomTree(rand.New(rand.NewSource(11)), 250, []string{"a"}, 2)
	fmt.Printf("   %6s %16s %14s\n", "|Q|", "np-hard side", "poly side")
	for _, k := range []int{2, 4, 6, 8} {
		hard := hardQuery(k)
		easy := easyQuery(k)
		dh := timeIt(func() {
			if _, err := cq.EvalGeneric(hard, tr); err != nil {
				panic(err)
			}
		})
		de := timeIt(func() {
			if _, err := cq.EvalAcyclic(easy, tr); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %6d %16s %14s\n", k, dh.Round(time.Microsecond), de.Round(time.Microsecond))
	}
}

func hardQuery(k int) *cq.Query {
	q := &cq.Query{NumVars: k + 1, Free: -1}
	for i := 0; i < k; i++ {
		ax := cq.Child
		if i%2 == 1 {
			ax = cq.ChildPlus
		}
		q.Edges = append(q.Edges, cq.EdgeAtom{Axis: ax, X: cq.Var(i), Y: cq.Var(i + 1)})
		q.Labels = append(q.Labels, cq.LabelAtom{X: cq.Var(i), Label: "a"})
	}
	q.Labels = append(q.Labels, cq.LabelAtom{X: cq.Var(k), Label: "zz"})
	return q
}

func easyQuery(k int) *cq.Query {
	q := &cq.Query{NumVars: k + 1, Free: 0}
	for i := 0; i < k; i++ {
		ax := cq.Child
		if i%2 == 1 {
			ax = cq.NextSiblingStar
		}
		q.Edges = append(q.Edges, cq.EdgeAtom{Axis: ax, X: cq.Var(i), Y: cq.Var(i + 1)})
	}
	return q
}

// ebayFetcher parses one generated n-item eBay listing into a fixed
// in-memory fetcher, so the measured work is extraction alone.
func ebayFetcher(n int) (elog.MapFetcher, error) {
	site := web.NewAuctionSite(8, n)
	site.PageSize = n
	sim := web.New()
	site.Register(sim, "www.ebay.com")
	page, err := sim.Fetch("www.ebay.com/")
	if err != nil {
		return nil, err
	}
	return elog.MapFetcher{"www.ebay.com/": page}, nil
}

func e18ElogCompiled() {
	header("E18", "compiled Elog wrappers on the bitset kernel (PR 3)",
		"compiled execution beats the interpreter; repeated extraction of an unchanged page is >=2x faster again")
	prog := elog.MustParse(ebayFigure5)
	fmt.Printf("   %8s %14s %14s %14s %10s %10s\n",
		"items", "interpreted", "compiled-cold", "compiled-hot", "vs-interp", "hot-vs-cold")
	for _, n := range []int{25, 50, 100} {
		fetch, err := ebayFetcher(n)
		check(err)
		di := timeIt(func() {
			if _, err := elog.NewEvaluator(fetch).Run(prog); err != nil {
				panic(err)
			}
		})
		dc := timeIt(func() {
			if _, err := elog.NewEvaluator(fetch).RunCompiled(elog.MustCompile(prog)); err != nil {
				panic(err)
			}
		})
		cp := elog.MustCompile(prog)
		if _, err := elog.NewEvaluator(fetch).RunCompiled(cp); err != nil { // warm
			panic(err)
		}
		dh := timeIt(func() {
			if _, err := elog.NewEvaluator(fetch).RunCompiled(cp); err != nil {
				panic(err)
			}
		})
		fmt.Printf("   %8d %14s %14s %14s %9.1fx %9.1fx\n",
			n, di.Round(time.Microsecond), dc.Round(time.Microsecond), dh.Round(time.Microsecond),
			float64(di)/float64(dh), float64(dc)/float64(dh))
	}
}

// v1Server spins up the HTTP front end with dynamic registration
// enabled (no rate limit: we are the load).
func v1Server() *httptest.Server {
	s := server.New(server.Config{AllowDynamic: true, MaxCompilesPerMinute: -1})
	return httptest.NewServer(s.Handler())
}

// v1Post issues one JSON POST and fails hard on a non-2xx status.
func v1Post(url string, body map[string]any) {
	data, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	check(err)
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		panic(fmt.Sprintf("POST %s: %d %s", url, resp.StatusCode, out))
	}
}

func v1Delete(url string) {
	req, err := http.NewRequest("DELETE", url, nil)
	check(err)
	resp, err := http.DefaultClient.Do(req)
	check(err)
	resp.Body.Close()
}

// e19Page returns the generated n-item auction listing as raw HTML, the
// inline page POSTed alongside dynamic wrappers.
func e19Page(n int) string {
	site := web.NewAuctionSite(8, n)
	site.PageSize = n
	sim := web.New()
	site.Register(sim, "www.ebay.com")
	src, err := sim.Source("www.ebay.com/")
	check(err)
	return src
}

// e19Cold measures one full POST /v1/wrappers round trip — compile,
// register, synchronous first extraction — followed by DELETE.
func e19Cold(ts *httptest.Server, page string, i int) {
	name := fmt.Sprintf("cold%d", i)
	v1Post(ts.URL+"/v1/wrappers", map[string]any{
		"name": name, "program": ebayFigure5, "html": page,
		"auxiliary": []string{"tableseq"},
	})
	v1Delete(ts.URL + "/v1/wrappers/" + name)
}

func e19DynamicRegister() {
	header("E19", "dynamic wrapper registration over /v1 (PR 4)",
		"compile+register+first-extract as one POST; warm fingerprint caches make repeat extraction cheap")
	page := e19Page(50)
	ts := v1Server()
	defer ts.Close()

	i := 0
	cold := timeIt(func() { e19Cold(ts, page, i); i++ })

	// Warm: one registered wrapper, repeated one-shot extraction of its
	// unchanged registered page (empty body = Origin source) — the page
	// tree is already parsed and its fingerprint already sits in the
	// compiled match caches, so extraction skips the tree walks.
	v1Post(ts.URL+"/v1/wrappers", map[string]any{
		"name": "warm", "program": ebayFigure5, "html": page,
		"auxiliary": []string{"tableseq"},
	})
	extract := func() { v1Post(ts.URL+"/v1/wrappers/warm/extract", map[string]any{}) }
	extract() // prime the fingerprint cache
	warm := timeIt(extract)

	fmt.Printf("   %-34s %12s\n", "cold: POST wrappers (50 items)", cold.Round(time.Microsecond))
	fmt.Printf("   %-34s %12s\n", "warm: POST extract, cached page", warm.Round(time.Microsecond))
	fmt.Printf("   cold/warm: %.1fx\n", float64(cold)/float64(warm))
}

// nopPipe is an inert pipeline for counting scheduler goroutines.
type nopPipe struct {
	name string
	out  *transform.Collector
}

func (p *nopPipe) PipeName() string             { return p.name }
func (p *nopPipe) Tick() error                  { return nil }
func (p *nopPipe) Output() *transform.Collector { return p.out }

// goroutinesWithPipelines runs a server with n registered pipelines and
// reports the process goroutine count at steady state.
func goroutinesWithPipelines(n int) int {
	s := server.New(server.Config{Addr: "127.0.0.1:0"})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		if err := s.Register(&nopPipe{name: name, out: &transform.Collector{CompName: name}}, time.Hour); err != nil {
			panic(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	<-s.Ready()
	time.Sleep(30 * time.Millisecond) // let the immediate first ticks drain
	g := runtime.NumGoroutine()
	cancel()
	<-done
	return g
}

// e20Fleet builds the 1000-wrapper/50-page fleet of E20; cache nil
// means per-wrapper fetching.
func e20Fleet(nWrappers, nPages int, cache *fetchcache.Cache) ([]*transform.WrapperSource, *web.Web) {
	sim := web.New()
	for p := 0; p < nPages; p++ {
		sim.SetStatic(fmt.Sprintf("fleet.example.com/p%d", p),
			fmt.Sprintf(`<html><body><table><tr><td class="t">item %d</td></tr><tr><td class="t">more %d</td></tr></table></body></html>`, p, p))
	}
	srcs := make([]*transform.WrapperSource, nWrappers)
	for i := range srcs {
		srcs[i] = &transform.WrapperSource{
			CompName: fmt.Sprintf("w%d", i),
			Fetcher:  sim,
			Program: elog.MustParse(fmt.Sprintf(
				`it(S, X) <- document("fleet.example.com/p%d", S), subelem(S, (?.td, [(class, t, exact)]), X)`, i%nPages)),
			Design: &pib.Design{Auxiliary: map[string]bool{"document": true}},
			Shared: cache,
		}
	}
	return srcs, sim
}

func pollFleet(srcs []*transform.WrapperSource) {
	for _, s := range srcs {
		if _, err := s.Poll(); err != nil {
			panic(err)
		}
	}
}

func e20SharedFetch() {
	header("E20", "sharded scheduler + shared fetch layer (PR 5)",
		"O(shards+workers) goroutines for any fleet size; overlapping wrappers share one fetch+parse per page")
	fmt.Printf("   %10s %12s\n", "wrappers", "goroutines")
	for _, n := range []int{10, 100, 1000} {
		fmt.Printf("   %10d %12d\n", n, goroutinesWithPipelines(n))
	}

	const nWrappers, nPages = 1000, 50
	fetches := func(sim *web.Web) int {
		total := 0
		for p := 0; p < nPages; p++ {
			total += sim.FetchCount(fmt.Sprintf("fleet.example.com/p%d", p))
		}
		return total
	}
	priv, privSim := e20Fleet(nWrappers, nPages, nil)
	pollFleet(priv) // warm: compile + first poll
	before := fetches(privSim)
	dPriv, rounds := timeItN(func() { pollFleet(priv) })
	privPerRound := (fetches(privSim) - before) / rounds

	shared, sharedSim := e20Fleet(nWrappers, nPages, fetchcache.New(nPages*2, time.Hour))
	pollFleet(shared)
	before = fetches(sharedSim)
	dShared, _ := timeItN(func() { pollFleet(shared) })
	sharedPerRound := (fetches(sharedSim) - before) / rounds

	fmt.Printf("   fleet poll round (%d wrappers / %d shared pages):\n", nWrappers, nPages)
	fmt.Printf("   %-28s %12s %18s\n", "", "median", "fetches/round")
	fmt.Printf("   %-28s %12s %18d\n", "per-wrapper fetching", dPriv.Round(time.Microsecond), privPerRound)
	fmt.Printf("   %-28s %12s %18d\n", "shared fetch layer", dShared.Round(time.Microsecond), sharedPerRound)
	fmt.Printf("   private/shared: %.1fx\n", float64(dPriv)/float64(dShared))
}

// e21Round builds the E21 fleet — 100 wrappers stamped from one
// template, all monitoring the same match-heavy page whose content
// churns every round — and returns one full poll round as a closure.
// Batched fleets share one fetch/document cache and one fleet-shared
// match cache; per-wrapper fleets fetch, parse and match privately.
func e21Round(nWrappers int, batched bool) func() {
	const url = "fleet.example.com/board"
	round := 0
	page := func() string {
		var sb strings.Builder
		sb.WriteString("<html><body><table>")
		for r := 0; r < 400; r++ {
			tag := ""
			if r%50 == 0 {
				tag = "DEAL "
			}
			fmt.Fprintf(&sb, `<tr class="row"><td class="name">%sitem %d (round %d)</td><td class="price">$ %d</td></tr>`, tag, r, round, r*3+round)
		}
		sb.WriteString("</table></body></html>")
		return sb.String()
	}
	prog := fmt.Sprintf(`
page(S, X) <- document(%q, S), subelem(S, .body, X)
row(S, X) <- page(_, S), subelem(S, (?.tr, [(elementtext, .*DEAL.*, regexp)]), X)
name(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
price(S, X) <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, url)
	sim := web.New()
	sim.SetPage(url, page)
	var mc *elog.MatchCache
	var cache *fetchcache.Cache
	if batched {
		mc = elog.NewMatchCache()
		cache = fetchcache.New(4, time.Hour)
	}
	design := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}}
	srcs := make([]*transform.WrapperSource, nWrappers)
	for i := range srcs {
		srcs[i] = &transform.WrapperSource{
			CompName: fmt.Sprintf("w%d", i),
			Fetcher:  sim,
			Program:  elog.MustParse(prog),
			Design:   design,
			NoCache:  true,
			Shared:   cache,
			Batch:    mc,
		}
	}
	pollRound := func() {
		round++
		if cache != nil {
			cache.Flush() // one freshness window per round
		}
		pollFleet(srcs)
	}
	pollRound() // warm: compile every program
	return pollRound
}

func e21BatchedFleet() {
	header("E21", "batched fleet extraction (PR 6)",
		"100 wrappers on one shared, churning page: ~1 parse + 1 warmed match cache per round")
	const nWrappers = 100
	perWrapper := e21Round(nWrappers, false)
	dPriv := timeIt(perWrapper)
	batched := e21Round(nWrappers, true)
	dBatch := timeIt(batched)
	fmt.Printf("   fleet poll round (%d wrappers / 1 churning page):\n", nWrappers)
	fmt.Printf("   %-28s %12s\n", "", "median")
	fmt.Printf("   %-28s %12s\n", "per-wrapper extraction", dPriv.Round(time.Microsecond))
	fmt.Printf("   %-28s %12s\n", "batched extraction", dBatch.Round(time.Microsecond))
	fmt.Printf("   per-wrapper/batched: %.1fx\n", float64(dPriv)/float64(dBatch))
}

// e24Setup builds the E24 churn workload: a catalogue page of 60
// sections x 40 rows (~12k nodes) where each round rewrites one
// contiguous window of 3 sections (5% of the nodes) and leaves the
// rest byte-identical, plus the wrapper extracting it. The expensive
// step is the SALE-row filter: an elementtext regexp that walks every
// candidate row's subtree — exactly the work subtree-fingerprint reuse
// skips for clean sections. Page content is a pure function of the
// accumulated per-section versions, so churn is reproducible.
func e24Setup() (page func() string, bump func(), prog, url string) {
	url = "churn.example.com/catalogue"
	const sections, rowsPer, window = 60, 40, 3
	version := make([]int, sections)
	round := 0
	page = func() string {
		var sb strings.Builder
		sb.WriteString("<html><body>")
		for s := 0; s < sections; s++ {
			v := version[s]
			sb.WriteString(`<div class="section"><table>`)
			for r := 0; r < rowsPer; r++ {
				tag := ""
				if r == v%rowsPer {
					tag = "SALE "
				}
				fmt.Fprintf(&sb, `<tr><td class="name">%sitem %d.%d v%d</td><td class="price">$ %d.%02d</td></tr>`,
					tag, s, r, v, 10+(s*7+v*13)%90, (s*31+v*17)%100)
			}
			sb.WriteString("</table></div>")
		}
		sb.WriteString("</body></html>")
		return sb.String()
	}
	bump = func() {
		start := (round * window) % sections
		for i := 0; i < window; i++ {
			version[(start+i)%sections]++
		}
		round++
	}
	prog = fmt.Sprintf(`
page(S, X)    <- document(%q, S), subelem(S, .body, X)
section(S, X) <- page(_, S), subelem(S, (.div, [(class, section, exact)]), X)
row(S, X)     <- section(_, S), subelem(S, (?.tr, [(elementtext, .*SALE.*, regexp)]), X)
name(S, X)    <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
price(S, X)   <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, url)
	return page, bump, prog, url
}

// e24Eval returns a benchmark measuring pure evaluation cost per churn
// round — page generation, parse and warm run off the clock — with one
// compiled program (and so its content-addressed caches) held across
// rounds, as a long-lived wrapper holds it across polls.
func e24Eval(incremental bool) func(b *testing.B) {
	page, bump, prog, url := e24Setup()
	cp := elog.MustCompile(elog.MustParse(prog))
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bump()
			tr := htmlparse.Parse(page())
			tr.Warm()
			fetch := elog.MapFetcher{url: tr}
			b.StartTimer()
			ev := elog.NewEvaluator(fetch)
			ev.Incremental = incremental
			if _, err := ev.RunCompiled(cp); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// e24Round builds the E24 fleet — nWrappers wrappers over one shared
// churning page, fetched and parsed once per round through a shared
// fetch cache — and returns one full poll round as a closure. Each
// wrapper keeps its own compiled program across rounds; incremental
// toggles subtree-fingerprint reuse, everything else is identical.
func e24Round(nWrappers int, incremental bool) func() {
	page, bump, prog, url := e24Setup()
	sim := web.New()
	sim.SetPage(url, page)
	cache := fetchcache.New(4, time.Hour)
	design := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true, "section": true}}
	srcs := make([]*transform.WrapperSource, nWrappers)
	for i := range srcs {
		srcs[i] = &transform.WrapperSource{
			CompName:      fmt.Sprintf("w%d", i),
			Fetcher:       sim,
			Program:       elog.MustParse(prog),
			Design:        design,
			NoCache:       true,
			Shared:        cache,
			NoIncremental: !incremental,
		}
	}
	pollRound := func() {
		bump()
		cache.Flush() // one freshness window per round
		pollFleet(srcs)
	}
	pollRound() // warm: compile every program, seed the subtree caches
	return pollRound
}

func e24ChurnIncremental() {
	header("E24", "incremental extraction under churn (PR 8)",
		"100 wrappers, one shared page, ~5% of nodes mutate per round: only dirty regions re-match")
	const nWrappers = 100
	full := e24Round(nWrappers, false)
	dFull := timeIt(full)
	incr := e24Round(nWrappers, true)
	dIncr := timeIt(incr)
	fmt.Printf("   fleet poll round (%d wrappers / 1 churning page, ~5%% dirty):\n", nWrappers)
	fmt.Printf("   %-28s %12s\n", "", "median")
	fmt.Printf("   %-28s %12s\n", "full re-evaluation", dFull.Round(time.Microsecond))
	fmt.Printf("   %-28s %12s\n", "incremental", dIncr.Round(time.Microsecond))
	fmt.Printf("   full/incremental: %.1fx\n", float64(dFull)/float64(dIncr))
}

// e26Tick builds one long-lived wrapper over the E24 churn workload
// and returns (advance, tick): advance rewrites the page and re-parses
// it off the clock; tick runs one Poll and encodes the resulting
// document to bytes — the full evaluate→transform→encode cost a
// scheduler tick pays per wrapper. With incremental on, all three
// reuse layers engage: subtree-fingerprint match reuse in the
// evaluator, content-hash output-subtree splicing in the transformer,
// and frozen-subtree byte splicing in the encoder. With it off, every
// tick re-evaluates, rebuilds the output tree and re-encodes from
// scratch.
func e26Tick(incremental bool) (advance func(), tick func() []byte) {
	page, bump, prog, url := e24Setup()
	src := &transform.WrapperSource{
		CompName:            "e26",
		Program:             elog.MustParse(prog),
		Design:              &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true, "section": true}},
		NoCache:             true,
		NoIncremental:       !incremental,
		NoIncrementalOutput: !incremental,
	}
	enc := xmlenc.NewEncoder()
	advance = func() {
		bump()
		tr := htmlparse.Parse(page())
		tr.Warm()
		src.Fetcher = elog.MapFetcher{url: tr}
	}
	tick = func() []byte {
		docs, err := src.Poll()
		check(err)
		if incremental {
			return enc.MarshalIndentBytes(docs[0])
		}
		return xmlenc.MarshalIndentBytes(docs[0])
	}
	advance()
	tick() // warm: compile, seed the match/output/encoder caches
	return advance, tick
}

// e26Median measures the median on-clock tick over several churn
// rounds, advancing the page off the clock before each one.
func e26Median(advance func(), tick func() []byte) time.Duration {
	runs := 7
	if *quick {
		runs = 3
	}
	var ds []time.Duration
	for i := 0; i < runs; i++ {
		advance()
		t0 := time.Now()
		tick()
		ds = append(ds, time.Since(t0))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func e26ChurnEndToEnd() {
	header("E26", "end-to-end incremental tick (PR 10)",
		"instance diffing + output-subtree reuse + splice encoding: tick cost tracks the dirty region, bytes identical")
	fullAdv, fullTick := e26Tick(false)
	incAdv, incTick := e26Tick(true)
	// Both paths must render every churned version byte-identically —
	// the reused bytes are indistinguishable from a full rebuild.
	for i := 0; i < 3; i++ {
		fullAdv()
		incAdv()
		if !bytes.Equal(fullTick(), incTick()) {
			panic("E26: incremental tick diverges from full rebuild")
		}
	}
	dFull := e26Median(fullAdv, fullTick)
	dIncr := e26Median(incAdv, incTick)
	fmt.Printf("   one wrapper, ~5%% of the page dirty per tick (poll + encode, parse off-clock):\n")
	fmt.Printf("   %-28s %12s\n", "", "median")
	fmt.Printf("   %-28s %12s\n", "full rebuild tick", dFull.Round(time.Microsecond))
	fmt.Printf("   %-28s %12s\n", "incremental tick", dIncr.Round(time.Microsecond))
	fmt.Printf("   full/incremental: %.1fx\n", float64(dFull)/float64(dIncr))
}

func e12TranslationSizes() {
	header("E12", "Core XPath -> TMNF translation (Theorem 4.6)",
		"linear-time translation, program size linear in |Q|, same answers")
	fmt.Printf("   %6s %8s %10s %12s\n", "|Q|", "rules", "|P'|", "translate")
	for _, k := range []int{2, 4, 8, 16} {
		q := doubleSlash(k)
		var prog *datalog.Program
		d := timeIt(func() {
			var err error
			prog, _, err = xpath.TranslateCore(q)
			check(err)
		})
		fmt.Printf("   %6d %8d %10d %12s\n", q.Size(), len(prog.Rules), prog.Size(), d.Round(time.Microsecond))
	}
}

// ---------------------------------------------------------------------
// E22/E23: the encode-once delivery plane (PR 7).

// churnPipe is a server pipeline whose every tick delivers a fresh
// rows-row document: every tick is a changed tick, so no fingerprint
// or byte-identity suppression short-circuits the publish.
type churnPipe struct {
	name string
	out  *transform.Collector
	rows int
	n    int
}

func (p *churnPipe) PipeName() string             { return p.name }
func (p *churnPipe) Output() *transform.Collector { return p.out }

func (p *churnPipe) Tick() error {
	p.n++
	doc := xmlenc.NewElement("doc")
	doc.SetAttr("n", strconv.Itoa(p.n))
	for i := 0; i < p.rows; i++ {
		doc.AppendTextElement("row", fmt.Sprintf("item %d of tick %d", i, p.n))
	}
	_, err := p.out.Process("", doc)
	return err
}

func newChurnPipe(name string, rows int) *churnPipe {
	return &churnPipe{name: name, out: &transform.Collector{CompName: name}, rows: rows}
}

// deliverTick advances the pipeline one changed tick and performs one
// in-process read, which publishes the new snapshot (encode once) and
// fans it out to the watch hub — the cost the scheduler pays at
// tick-commit time.
func deliverTick(p *churnPipe, h http.Handler) {
	check(p.Tick())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/"+p.name, nil))
	if rec.Code != 200 {
		panic(fmt.Sprintf("GET /%s: %d", p.name, rec.Code))
	}
}

// watcherStorm is a fleet of live SSE subscriptions counting received
// result events.
type watcherStorm struct {
	received atomic.Int64
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

// openWatchers subscribes n SSE watchers and returns once every one has
// received the initial state event (i.e. all subscriptions are live).
func openWatchers(base, name string, n int) *watcherStorm {
	ctx, cancel := context.WithCancel(context.Background())
	st := &watcherStorm{cancel: cancel}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: n}}
	var ready sync.WaitGroup
	for i := 0; i < n; i++ {
		ready.Add(1)
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			first := true
			done := func() {
				if first {
					first = false
					ready.Done()
				}
			}
			defer done()
			req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/wrappers/"+name+"/watch", nil)
			check(err)
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			br := bufio.NewReader(resp.Body)
			for {
				line, err := br.ReadString('\n')
				if err != nil {
					return
				}
				if strings.HasPrefix(line, "event: result") {
					if first {
						done() // initial state: subscription is live
						continue
					}
					st.received.Add(1)
				}
			}
		}()
	}
	ready.Wait()
	return st
}

func (st *watcherStorm) close() {
	st.cancel()
	st.wg.Wait()
}

// deliveryStats fetches the delivery block from /statusz.
func deliveryStats(base string) server.DeliveryStatus {
	resp, err := http.Get(base + "/statusz")
	check(err)
	defer resp.Body.Close()
	var report struct {
		Delivery server.DeliveryStatus `json:"delivery"`
	}
	check(json.NewDecoder(resp.Body).Decode(&report))
	return report.Delivery
}

func e22WatchFanout() {
	header("E22", "encode-once watch fan-out (PR 7)",
		"a changed tick encodes once and feeds 1000 subscribers for about one poll's encode cost")
	const nWatchers = 1000
	p := newChurnPipe("hot", 50)
	s := server.New(server.Config{WatchQueue: 16})
	check(s.Register(p, time.Hour))
	h := s.Handler()
	deliverTick(p, h)

	encode := timeIt(func() {
		for i := 0; i < 50; i++ {
			xmlenc.MarshalIndentBytes(p.out.Latest())
		}
	}) / 50
	tick0 := timeIt(func() {
		for i := 0; i < 20; i++ {
			deliverTick(p, h)
		}
	}) / 20

	ts := httptest.NewServer(h)
	defer ts.Close()
	st := openWatchers(ts.URL, "hot", nWatchers)

	// The synchronous tick-path cost with the fleet attached: encode
	// once + enqueue to every subscriber queue. Drain the asynchronous
	// SSE writes between runs so one tick's fan-out I/O doesn't steal
	// CPU from the next measurement.
	drain := func(from int64) {
		deadline := time.Now().Add(30 * time.Second)
		for st.received.Load() < from+nWatchers && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	runs := 15
	if *quick {
		runs = 7
	}
	ticks := make([]time.Duration, runs)
	for i := range ticks {
		base := st.received.Load()
		// Let the previous tick's SSE writers park and take the GC hit
		// outside the measured window.
		time.Sleep(2 * time.Millisecond)
		runtime.GC()
		t0 := time.Now()
		deliverTick(p, h)
		ticks[i] = time.Since(t0)
		drain(base)
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
	tickN := ticks[runs/2]

	// End-to-end: one changed tick, wall time until every subscriber
	// holds the event.
	st.received.Store(0)
	snapsBefore := deliveryStats(ts.URL).Snapshots
	t0 := time.Now()
	deliverTick(p, h)
	for st.received.Load() < nWatchers && time.Since(t0) < 30*time.Second {
		time.Sleep(200 * time.Microsecond)
	}
	wall := time.Since(t0)
	got := st.received.Load()
	ds := deliveryStats(ts.URL)
	st.close()

	// The same delivery consumed by polling: 1000 independent
	// conditional GETs (mostly 304 — the steady state of a poll fleet).
	resp, err := http.Get(ts.URL + "/hot")
	check(err)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	pollRound := func() {
		var wg sync.WaitGroup
		for i := 0; i < nWatchers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, err := http.NewRequest("GET", ts.URL+"/hot", nil)
				check(err)
				req.Header.Set("If-None-Match", etag)
				resp, err := client.Do(req)
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
		}
		wg.Wait()
	}
	pollRound() // warm the connection pool
	poll := timeIt(pollRound)

	fmt.Printf("   %-38s %12s\n", "single poll encode", encode.Round(time.Microsecond))
	fmt.Printf("   %-38s %12s\n", "tick path, 0 watchers", tick0.Round(time.Microsecond))
	fmt.Printf("   %-38s %12s\n", fmt.Sprintf("tick path, %d watchers (enqueue)", nWatchers), tickN.Round(time.Microsecond))
	fmt.Printf("   tick path with %d watchers vs one encode: %.2fx\n", nWatchers, float64(tickN)/float64(encode))
	fmt.Printf("   end-to-end: %d/%d watchers served in %s\n", got, nWatchers, wall.Round(time.Microsecond))
	fmt.Printf("   %-38s %12s\n", fmt.Sprintf("%d conditional pollers (304s)", nWatchers), poll.Round(time.Microsecond))
	fmt.Printf("   delivery: +%d snapshot(s) for the measured tick (encode-once), subscribers_total=%d, dropped_slow=%d\n",
		ds.Snapshots-snapsBefore, ds.SubscribersTotal, ds.DroppedSlow)
}

// e23Handlers returns the PR 6-shaped baseline (one global mutex
// guarding registry lookup + a per-document render cache) and the
// PR 7 delivery-plane handler over the same pipeline.
func e23Handlers(p *churnPipe) (mutexed, lockfree http.Handler) {
	s := server.New(server.Config{})
	check(s.Register(p, time.Hour))
	h := s.Handler()
	deliverTick(p, h)

	var mu sync.Mutex
	pipes := map[string]*transform.Collector{p.name: p.out}
	var cachedDoc *xmlenc.Node
	var cachedXML []byte
	mutexed = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		out := pipes[strings.TrimPrefix(r.URL.Path, "/")]
		doc := out.Latest()
		if doc != cachedDoc {
			cachedDoc, cachedXML = doc, xmlenc.MarshalIndentBytes(doc)
		}
		data := cachedXML
		mu.Unlock()
		w.Header().Set("Content-Type", "application/xml")
		w.Write(data)
	})
	return mutexed, h
}

// parallelGet is a RunParallel benchmark body hammering one path of h
// with in-process requests.
func parallelGet(h http.Handler, path string) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != 200 {
					b.Fatal(rec.Code)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E25: durable delivery (PR 9).

// e25Pipe wires a churn pipeline into a server whose deliveries append
// to a result log under a throwaway directory with the given fsync
// mode; durable=false keeps the delivery plane in-memory. deliverTick
// on the returned handler measures the acknowledged publish path: with
// a store attached the snapshot is not served until the journal is
// drained to the WAL.
func e25Pipe(name string, durable bool, mode resultlog.FsyncMode) (p *churnPipe, h http.Handler, cleanup func()) {
	p = newChurnPipe(name, 50)
	cfg := server.Config{}
	cleanup = func() {}
	if durable {
		dir, err := os.MkdirTemp("", "bench-e25-")
		check(err)
		store, err := resultlog.Open(dir, resultlog.Options{Fsync: mode})
		check(err)
		cfg.ResultStore = store
		cleanup = func() {
			check(store.Close())
			os.RemoveAll(dir)
		}
	}
	s := server.New(cfg)
	check(s.Register(p, time.Hour))
	return p, s.Handler(), cleanup
}

// e25Fanout registers n webhook endpoints on one built-in sink and
// returns a closure that advances one changed tick and blocks until
// every endpoint has acknowledged the new version — the end-to-end push
// latency of the webhook plane (dispatchers run off the tick path).
func e25Fanout(n int) (fanout func(), cleanup func()) {
	p, h, cleanPipe := e25Pipe("hot25hooks", false, 0)
	var acked atomic.Int64
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		acked.Add(1)
	}))
	ts := httptest.NewServer(h)
	deliverTick(p, h) // version 1 exists before the hooks register
	for i := 0; i < n; i++ {
		v1Post(ts.URL+"/v1/wrappers/hot25hooks/webhooks",
			map[string]any{"url": fmt.Sprintf("%s/hook/%d", sink.URL, i)})
	}
	fanout = func() {
		base := acked.Load()
		deliverTick(p, h)
		deadline := time.Now().Add(30 * time.Second)
		for acked.Load() < base+int64(n) && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	cleanup = func() {
		ts.Close()
		sink.Close()
		cleanPipe()
	}
	fanout() // warm: dispatcher goroutines and connection pools are up
	return fanout, cleanup
}

func e25DurableDelivery() {
	header("E25", "durable delivery: WAL-backed result log + webhooks (PR 9)",
		"batched fsync keeps the acknowledged publish path near in-memory cost; webhook fan-out rides off the tick path")
	fmt.Println("   acknowledged publish (changed tick + the read that publishes it):")
	fmt.Printf("   %-28s %12s %8s\n", "", "median", "vs-mem")
	var mem time.Duration
	var batchRatio float64
	for _, m := range []struct {
		label   string
		durable bool
		mode    resultlog.FsyncMode
	}{
		{"in-memory (no WAL)", false, 0},
		{"wal, batched fsync", true, resultlog.FsyncBatch},
		{"wal, fsync per append", true, resultlog.FsyncAlways},
	} {
		p, h, cleanup := e25Pipe("hot25", m.durable, m.mode)
		deliverTick(p, h) // warm
		d := timeIt(func() {
			for i := 0; i < 20; i++ {
				deliverTick(p, h)
			}
		}) / 20
		cleanup()
		if mem == 0 {
			mem = d
		}
		ratio := float64(d) / float64(mem)
		if m.mode == resultlog.FsyncBatch && m.durable {
			batchRatio = ratio
		}
		fmt.Printf("   %-28s %12s %7.2fx\n", m.label, d.Round(time.Microsecond), ratio)
	}
	fmt.Printf("   wal-batch vs in-memory: %.2fx (acceptance: <= 1.5x)\n", batchRatio)

	const nHooks = 8
	fanout, cleanup := e25Fanout(nHooks)
	d := timeIt(fanout)
	cleanup()
	fmt.Printf("   webhook fan-out: 1 delivery -> %d endpoints acked end-to-end in %s\n",
		nHooks, d.Round(time.Microsecond))
}

func e23LockFreeReads() {
	header("E23", "lock-free snapshot reads (PR 7)",
		"read throughput on one hot wrapper: global-mutex baseline vs atomic snapshot loads")
	p := newChurnPipe("hot23", 50)
	mutexed, lockfree := e23Handlers(p)
	rm := testing.Benchmark(parallelGet(mutexed, "/hot23"))
	rl := testing.Benchmark(parallelGet(lockfree, "/hot23"))
	nsM := float64(rm.T.Nanoseconds()) / float64(rm.N)
	nsL := float64(rl.T.Nanoseconds()) / float64(rl.N)
	fmt.Printf("   %-34s %12.0f ns/op\n", "global mutex + render cache", nsM)
	fmt.Printf("   %-34s %12.0f ns/op\n", "lock-free snapshot", nsL)
	fmt.Printf("   mutexed/lock-free: %.1fx at GOMAXPROCS=%d\n", nsM/nsL, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("   (single proc: the mutex is uncontended here; the gap it protects against")
		fmt.Println("    appears under parallel readers, while the snapshot path also pays for")
		fmt.Println("    ETag/Vary/conditional-GET handling on every request)")
	}
}
