// Command elogc runs an Elog wrapper program against HTML documents and
// prints the extracted XML — the Extractor + XML Transformer pair of
// Figure 2 as a command-line tool. It is a thin shim over the public
// SDK (repro/pkg/lixto); anything it does is available to embedders.
//
// Usage:
//
//	elogc -program wrapper.elog [-aux pat1,pat2] [-root name] doc.html [url=doc2.html ...]
//
// Each document argument is either a file path (served at the URL equal
// to the path) or url=path, binding the file to that URL for the
// program's document atoms. With no document arguments, pages are read
// from the simulated web's auction site (a demo mode).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/elog"
	"repro/internal/htmlparse"
	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

func main() {
	programPath := flag.String("program", "", "path to the Elog program (required)")
	aux := flag.String("aux", "document", "comma-separated auxiliary patterns")
	root := flag.String("root", "lixto", "output document element name")
	interpret := flag.Bool("interpret", false, "run the seed interpreter instead of the compiled program")
	concurrency := flag.Int("concurrency", 0, "max parallel page fetches while crawling (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print compiled match-cache statistics to stderr after wrapping")
	flag.Parse()
	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "elogc: -program is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}

	opts := []lixto.Option{
		lixto.WithRoot(*root),
		lixto.WithConcurrency(*concurrency),
		lixto.WithCache(!*interpret),
	}
	for _, p := range strings.Split(*aux, ",") {
		if p = strings.TrimSpace(p); p != "" {
			opts = append(opts, lixto.WithAuxiliary(p))
		}
	}

	var fetcher elog.Fetcher
	if flag.NArg() == 0 {
		sim := web.New()
		web.NewAuctionSite(1, 20).Register(sim, "www.ebay.com")
		fetcher = sim
		fmt.Fprintln(os.Stderr, "elogc: no documents given; using the simulated auction site")
	} else {
		m := elog.MapFetcher{}
		for _, arg := range flag.Args() {
			url, path := arg, arg
			if i := strings.IndexByte(arg, '='); i >= 0 {
				url, path = arg[:i], arg[i+1:]
			}
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			m[url] = htmlparse.Parse(string(data))
		}
		fetcher = m
	}
	opts = append(opts, lixto.WithFetcher(fetcher))

	w, err := lixto.Compile(string(src), opts...)
	if err != nil {
		fatal(err)
	}
	res, err := w.Extract(context.Background(), lixto.Origin())
	if err != nil {
		fatal(err)
	}
	fmt.Print(xmlenc.MarshalIndent(res.XML()))
	if *stats {
		if !*interpret {
			hits, misses := w.Compiled().Stats()
			fmt.Fprintf(os.Stderr, "elogc: match cache: %d hits, %d misses\n", hits, misses)
		} else {
			fmt.Fprintln(os.Stderr, "elogc: match-cache stats unavailable with -interpret")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elogc:", err)
	os.Exit(1)
}
