// Command xpathq evaluates XPath queries on HTML documents using the
// engines of Section 4: the linear-time Core XPath evaluator
// (Theorem "Core XPath is in linear time"), the polynomial context-value
// evaluator for the extended fragment (Theorem 4.1), and — for
// comparison — the exponential naive evaluator that reproduces pre-2002
// engine behaviour.
//
// Usage:
//
//	xpathq [-engine core|full|naive|tmnf] [-show] 'query' [doc.html]
//
// With no document, the query runs against a demo page. -engine tmnf
// translates the query to monadic datalog (Theorem 4.6) and evaluates it
// with the TMNF engine; -show prints the translated program.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dom"
	"repro/internal/htmlparse"
	"repro/internal/mdatalog"
	"repro/internal/xpath"
)

const demo = `<html><body><h1>Demo</h1><table><tr><td><a href="#">x</a></td><td>y</td></tr><tr><td>z</td></tr></table><hr></body></html>`

func main() {
	engine := flag.String("engine", "core", "evaluator: core | full | naive | tmnf")
	show := flag.Bool("show", false, "print the translated datalog program (tmnf engine)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: xpathq [-engine core|full|naive|tmnf] 'query' [doc.html]")
		os.Exit(2)
	}
	query := flag.Arg(0)
	src := demo
	if flag.NArg() >= 2 {
		data, err := os.ReadFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	doc := htmlparse.Parse(src)
	p, err := xpath.Parse(query)
	if err != nil {
		fatal(err)
	}
	var nodes []dom.NodeID
	switch *engine {
	case "core":
		nodes, err = xpath.EvalCore(p, doc, nil)
	case "full":
		nodes, err = xpath.EvalFull(p, doc, nil)
	case "naive":
		nodes, err = xpath.EvalNaive(p, doc, nil)
		nodes = doc.SortDocOrder(nodes)
	case "tmnf":
		prog, qpred, terr := xpath.TranslateCore(p)
		if terr != nil {
			fatal(terr)
		}
		if *show {
			fmt.Fprintln(os.Stderr, prog)
		}
		nodes, err = mdatalog.Query(prog, doc, qpred)
		nodes = doc.SortDocOrder(nodes)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d nodes\n", len(nodes))
	for _, n := range nodes {
		text := doc.ElementText(n)
		if len(text) > 60 {
			text = text[:57] + "..."
		}
		fmt.Printf("  %-10s %q\n", doc.Label(n), text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpathq:", err)
	os.Exit(1)
}
