package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// Durable-delivery storm modes.
//
// Webhook sink mode (-webhooks N) turns lixtoload into the receiving
// side of the push path: it runs a built-in HTTP sink, registers N
// webhook endpoints on the target wrapper (since=0, so the retained
// history replays first), and audits every delivery — per-endpoint
// version coverage, duplicates (legal: at-least-once), gaps and
// regressions (bugs: a skipped or reordered version means a lost or
// misordered delivery).
//
// Crash storm mode (-crash-cmd "lixtoserver -data-dir ...") makes
// lixtoload supervise the server itself: it launches the command,
// SIGKILLs it every -crash-every, restarts it, and keeps the read and
// write storm running across the crashes. Combined with -webhooks the
// final audit proves the at-least-once contract end to end: every
// version acknowledged before a kill must reach every endpoint, with
// no gaps, across any number of kill -9s.

// sinkEndpoint audits one registered webhook endpoint.
type sinkEndpoint struct {
	path   string // sink path the endpoint POSTs to
	hookID string // server-side webhook id, for the final DELETE

	mu          sync.Mutex
	received    map[uint64]int // version -> delivery count
	last        uint64
	regressions int64
	badSigs     int64 // deliveries whose Lixto-Signature failed to verify
}

func (e *sinkEndpoint) record(version uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.received == nil {
		e.received = map[uint64]int{}
	}
	e.received[version]++
	if version < e.last {
		e.regressions++
	}
	e.last = version
}

// audit returns (receipts, unique, duplicates, gaps, regressions) for
// one endpoint. Gaps are versions missing inside the delivered range —
// with since=0 the range starts at the wrapper's first retained
// version, so any hole is a lost delivery.
func (e *sinkEndpoint) audit() (receipts, unique, dups, gaps, regressions int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var min, max uint64
	for v, n := range e.received {
		receipts += int64(n)
		unique++
		dups += int64(n - 1)
		if min == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if unique > 0 {
		gaps = int64(max-min+1) - unique
	}
	return receipts, unique, dups, gaps, e.regressions
}

// webhookSink is the built-in receiver plus its registered endpoints.
type webhookSink struct {
	ln        net.Listener
	secret    string
	endpoints []*sinkEndpoint
}

// newWebhookSink starts the sink server and registers n webhook
// endpoints on the target wrapper. A non-empty secret is sent with each
// registration and every delivery's Lixto-Signature header is verified
// against it (mismatches are counted and reported in the audit).
func newWebhookSink(client *http.Client, base, wrapper string, n int, secret string) (*webhookSink, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sink := &webhookSink{ln: ln, secret: secret}
	mux := http.NewServeMux()
	for i := 0; i < n; i++ {
		e := &sinkEndpoint{path: fmt.Sprintf("/hook/%d", i)}
		sink.endpoints = append(sink.endpoints, e)
		mux.HandleFunc(e.path, func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			if secret != "" && !server.VerifySignature(secret, body, r.Header.Get("Lixto-Signature")) {
				e.mu.Lock()
				e.badSigs++
				e.mu.Unlock()
			}
			if v, err := strconv.ParseUint(r.Header.Get("Lixto-Version"), 10, 64); err == nil {
				e.record(v)
			}
		})
	}
	go http.Serve(ln, mux)

	for _, e := range sink.endpoints {
		reg := map[string]any{
			"url":   "http://" + ln.Addr().String() + e.path,
			"since": 0,
		}
		if secret != "" {
			reg["secret"] = secret
		}
		body, _ := json.Marshal(reg)
		resp, err := client.Post(base+"/v1/wrappers/"+wrapper+"/webhooks",
			"application/json", bytes.NewReader(body))
		if err != nil {
			ln.Close()
			return nil, err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			ln.Close()
			return nil, fmt.Errorf("register webhook: %d %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(msg, &created); err == nil {
			e.hookID = created.ID
		}
	}
	return sink, nil
}

// settle waits until deliveries stop arriving (the dispatchers drained
// their backlog) or the deadline passes.
func (s *webhookSink) settle(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	last := int64(-1)
	for time.Now().Before(deadline) {
		var total int64
		for _, e := range s.endpoints {
			r, _, _, _, _ := e.audit()
			total += r
		}
		if total == last {
			return
		}
		last = total
		time.Sleep(200 * time.Millisecond)
	}
}

// report prints the audit and retires the registered endpoints.
func (s *webhookSink) report(client *http.Client, base, wrapper string) {
	var receipts, unique, dups, gaps, regressions, badSigs int64
	for _, e := range s.endpoints {
		r, u, d, g, rg := e.audit()
		receipts += r
		unique += u
		dups += d
		gaps += g
		regressions += rg
		e.mu.Lock()
		badSigs += e.badSigs
		e.mu.Unlock()
	}
	fmt.Printf("\nwebhooks: %d endpoints, %d receipts (%d unique versions, %d at-least-once redeliveries)\n",
		len(s.endpoints), receipts, unique, dups)
	if gaps == 0 && regressions == 0 {
		fmt.Println("webhooks: no gaps, no regressions — no lost deliveries")
	} else {
		fmt.Printf("webhooks: LOST OR MISORDERED DELIVERIES: %d gaps, %d regressions\n", gaps, regressions)
	}
	if s.secret != "" {
		if badSigs == 0 {
			fmt.Println("webhooks: every delivery carried a valid Lixto-Signature")
		} else {
			fmt.Printf("webhooks: INVALID SIGNATURES on %d deliveries\n", badSigs)
		}
	}
	for _, e := range s.endpoints {
		if e.hookID == "" {
			continue
		}
		req, _ := http.NewRequest("DELETE", base+"/v1/wrappers/"+wrapper+"/webhooks/"+e.hookID, nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	s.ln.Close()
}

// crashStorm supervises the server under test: launch, kill -9,
// relaunch.
type crashStorm struct {
	args []string
	base string

	mu     sync.Mutex
	cmd    *exec.Cmd
	kills  int64
	starts int64
}

func newCrashStorm(command, base string) *crashStorm {
	return &crashStorm{args: strings.Fields(command), base: base}
}

// start launches the server and waits until it answers /healthz.
func (cs *crashStorm) start() error {
	cmd := exec.Command(cs.args[0], cs.args[1:]...)
	if err := cmd.Start(); err != nil {
		return err
	}
	cs.mu.Lock()
	cs.cmd = cmd
	cs.starts++
	cs.mu.Unlock()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(cs.base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("crash storm: %q never became healthy on %s", strings.Join(cs.args, " "), cs.base)
}

// kill SIGKILLs the running server — no shutdown hook runs.
func (cs *crashStorm) kill() {
	cs.mu.Lock()
	cmd := cs.cmd
	cs.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
		cs.mu.Lock()
		cs.kills++
		cs.mu.Unlock()
	}
}

// run crashes and restarts the server every interval until the context
// expires, then leaves it running for the final audit.
func (cs *crashStorm) run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 3 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			cs.kill()
			if err := cs.start(); err != nil {
				fmt.Println("lixtoload:", err)
				return
			}
		}
	}
}

// stop terminates the supervised server for good.
func (cs *crashStorm) stop() {
	cs.kill()
}

func (cs *crashStorm) report() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	fmt.Printf("crash storm: %d launches, %d kill -9s survived\n", cs.starts, cs.kills)
}
