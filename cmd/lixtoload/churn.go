package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Churn mode drives the write side of the storm: it registers a
// catalogue wrapper on the target server (requires -allow-dynamic),
// then re-extracts it every interval with a page version in which only
// a small contiguous window of rows changed. The server's long-lived
// compiled wrapper keeps its content-addressed subtree caches across
// versions, so the unchanged rows' matches are reused and only the
// dirty window runs the matcher — the summary prints the server's
// subtree_hits / reused_nodes counters so the effect is visible from
// the outside.

// churnProgram extracts per-row contexts, the granularity the
// incremental evaluator reuses between page versions.
const churnProgram = `page(S, X)  <- document("churn", S), subelem(S, .body, X)
row(S, X)   <- page(_, S), subelem(S, ?.tr, X)
title(S, X) <- row(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)`

type churner struct {
	client *http.Client
	base   string // server URL prefix
	name   string // wrapper name
	rows   int
	dirty  int // rows rewritten per tick
	seed   int64

	// version[i] counts how often row i has been rewritten; the page is
	// a pure function of (seed, versions), so churn is reproducible.
	version []int
	step    int

	extracts atomic.Int64
	errors   atomic.Int64
}

func newChurner(client *http.Client, base, name string, rows int, frac float64, seed int64) *churner {
	if rows < 1 {
		rows = 1
	}
	dirty := int(float64(rows) * frac)
	if dirty < 1 {
		dirty = 1
	}
	if dirty > rows {
		dirty = rows
	}
	return &churner{client: client, base: base, name: name,
		rows: rows, dirty: dirty, seed: seed, version: make([]int, rows)}
}

// render produces the current page version.
func (c *churner) render() string {
	var b strings.Builder
	b.WriteString("<html><body><table>\n")
	for i, v := range c.version {
		mix := c.seed + int64(i)*31 + int64(v)*17
		fmt.Fprintf(&b, `<tr class="item"><td class="title">Item %d</td><td class="price">%d.%02d</td></tr>`+"\n",
			i, 10+mix%90, (mix*7)%100)
	}
	b.WriteString("</table></body></html>")
	return b.String()
}

// install (re)registers the churn wrapper over the initial page.
func (c *churner) install() error {
	req, _ := http.NewRequest("DELETE", c.base+"/v1/wrappers/"+c.name, nil)
	if resp, err := c.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	body, _ := json.Marshal(map[string]any{
		"name": c.name, "program": churnProgram, "html": c.render(),
		"auxiliary": []string{"page"}, "root": "catalogue",
	})
	resp, err := c.client.Post(c.base+"/v1/wrappers", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create wrapper %s: %d %s (is the server running with -allow-dynamic?)",
			c.name, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// tick rewrites the next contiguous window of rows and re-extracts.
func (c *churner) tick(ctx context.Context) {
	start := (c.step * c.dirty) % c.rows
	for i := 0; i < c.dirty; i++ {
		c.version[(start+i)%c.rows]++
	}
	c.step++
	body, _ := json.Marshal(map[string]any{"html": c.render()})
	req, err := http.NewRequestWithContext(ctx, "POST",
		c.base+"/v1/wrappers/"+c.name+"/extract", bytes.NewReader(body))
	if err != nil {
		c.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.errors.Add(1)
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.errors.Add(1)
		return
	}
	c.extracts.Add(1)
}

// run churns until the context expires.
func (c *churner) run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.tick(ctx)
		}
	}
}

// report prints the server-side incremental counters for the churned
// wrapper.
func (c *churner) report() {
	fmt.Printf("\nchurn: %d extractions (%d errors), %d/%d rows per tick\n",
		c.extracts.Load(), c.errors.Load(), c.dirty, c.rows)
	resp, err := c.client.Get(c.base + "/v1/wrappers")
	if err != nil {
		fmt.Println("churn: stats unavailable:", err)
		return
	}
	defer resp.Body.Close()
	var listing struct {
		Wrappers []struct {
			Name       string `json:"name"`
			Extraction *struct {
				SubtreeHits   uint64 `json:"subtree_hits"`
				SubtreeMisses uint64 `json:"subtree_misses"`
				DirtyNodes    uint64 `json:"dirty_nodes"`
				ReusedNodes   uint64 `json:"reused_nodes"`
				EvalNS        uint64 `json:"eval_ns"`
			} `json:"extraction"`
		} `json:"wrappers"`
		MatchCache *struct {
			Entries   int    `json:"entries"`
			Evictions uint64 `json:"evictions"`
		} `json:"match_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		fmt.Println("churn: stats unavailable:", err)
		return
	}
	for _, w := range listing.Wrappers {
		if w.Name != c.name || w.Extraction == nil {
			continue
		}
		e := w.Extraction
		fmt.Printf("server incremental: subtree_hits=%d subtree_misses=%d reused_nodes=%d dirty_nodes=%d eval=%s\n",
			e.SubtreeHits, e.SubtreeMisses, e.ReusedNodes, e.DirtyNodes, time.Duration(e.EvalNS))
		if total := e.ReusedNodes + e.DirtyNodes; total > 0 {
			fmt.Printf("server incremental: %.1f%% of context nodes reused across versions\n",
				100*float64(e.ReusedNodes)/float64(total))
		}
	}
	if listing.MatchCache != nil {
		fmt.Printf("server match cache: %d entries, %d evictions\n",
			listing.MatchCache.Entries, listing.MatchCache.Evictions)
	}
}
