// Command lixtoload storms a running lixtoserver with concurrent
// readers and reports what the delivery plane served. It drives the two
// read styles side by side:
//
//   - pollers: tight conditional-GET loops on GET /{wrapper} (or any
//     path), each reusing the last ETag via If-None-Match, so an
//     unchanged wrapper costs a 304 and zero body bytes;
//   - watchers: long-lived GET /v1/wrappers/{wrapper}/watch SSE
//     subscriptions counting pushed result events.
//
// Start a server, then point the harness at it:
//
//	lixtoserver -addr :8080 -interval 500ms &
//	lixtoload -addr http://localhost:8080 -wrapper nowplaying \
//	          -pollers 200 -watchers 800 -duration 10s
//
// The summary shows request and event totals, the 200/304 split
// (encode-once: the 304s never touched a marshaler), error counts, and
// body bytes transferred per read style.
//
// Two durable-delivery modes ride on top (see durable.go): -webhooks N
// registers N endpoints on a built-in sink and audits version coverage
// (duplicates are legal at-least-once redeliveries; gaps are lost
// deliveries), and -crash-cmd launches the server under lixtoload's
// supervision and kill -9s it every -crash-every, proving recovery
// under load:
//
//	lixtoload -addr http://localhost:8080 -wrapper churn \
//	          -crash-cmd "lixtoserver -addr :8080 -data-dir /tmp/lixto -allow-dynamic" \
//	          -churn -webhooks 8 -pollers 50 -watchers 50 -duration 30s
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type counters struct {
	requests  atomic.Int64
	fresh     atomic.Int64 // 200s with a body
	notMod    atomic.Int64 // 304s
	events    atomic.Int64 // SSE result events
	heartbeat atomic.Int64 // SSE comment pings
	errors    atomic.Int64
	bytes     atomic.Int64
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the lixtoserver")
	wrapper := flag.String("wrapper", "nowplaying", "wrapper name to read")
	pollers := flag.Int("pollers", 100, "concurrent conditional-GET pollers")
	watchers := flag.Int("watchers", 100, "concurrent SSE watch subscribers")
	duration := flag.Duration("duration", 10*time.Second, "how long to run the storm")
	pollDelay := flag.Duration("poll-delay", 0, "pause between polls per poller (0 = tight loop)")
	gzipOn := flag.Bool("gzip", false, "pollers advertise Accept-Encoding: gzip")
	churn := flag.Bool("churn", false,
		"register a churn wrapper (requires server -allow-dynamic) and mutate a fraction of its page per interval")
	churnInterval := flag.Duration("churn-interval", 500*time.Millisecond, "pause between churn ticks")
	churnRows := flag.Int("churn-rows", 200, "rows on the churned page")
	churnFrac := flag.Float64("churn-frac", 0.05, "fraction of rows rewritten per tick")
	churnSeed := flag.Int64("churn-seed", 1, "seed of the churn sequence")
	webhooks := flag.Int("webhooks", 0,
		"register N webhook endpoints on a built-in sink and audit delivery coverage")
	webhookSecret := flag.String("webhook-secret", "",
		"HMAC secret for the sink's webhook registrations; every delivery's Lixto-Signature header is verified")
	crashCmd := flag.String("crash-cmd", "",
		"launch the server with this command and kill -9/restart it during the storm (e.g. \"lixtoserver -addr :8080 -data-dir /tmp/d -allow-dynamic\")")
	crashEvery := flag.Duration("crash-every", 3*time.Second, "kill -9 period in crash storm mode")
	flag.Parse()
	if *pollers < 0 || *watchers < 0 || *pollers+*watchers+*webhooks == 0 {
		fmt.Fprintln(os.Stderr, "lixtoload: need at least one poller, watcher, or webhook")
		os.Exit(1)
	}

	base := strings.TrimRight(*addr, "/")
	pollURL := base + "/" + *wrapper
	watchURL := base + "/v1/wrappers/" + *wrapper + "/watch"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *pollers + *watchers,
		MaxIdleConnsPerHost: *pollers + *watchers,
		DisableCompression:  true, // count the wire bytes we asked for
	}}

	var storm *crashStorm
	if *crashCmd != "" {
		storm = newCrashStorm(*crashCmd, base)
		if err := storm.start(); err != nil {
			fmt.Fprintln(os.Stderr, "lixtoload:", err)
			os.Exit(1)
		}
		defer storm.stop()
	}

	var ch *churner
	if *churn {
		ch = newChurner(client, base, *wrapper, *churnRows, *churnFrac, *churnSeed)
		if err := ch.install(); err != nil {
			fmt.Fprintln(os.Stderr, "lixtoload:", err)
			os.Exit(1)
		}
	}

	var sink *webhookSink
	if *webhooks > 0 {
		var err error
		sink, err = newWebhookSink(client, base, *wrapper, *webhooks, *webhookSecret)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lixtoload:", err)
			os.Exit(1)
		}
	}

	// One probe first so a typo fails fast instead of as N errors.
	resp, err := client.Get(pollURL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lixtoload:", err)
		os.Exit(1)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "lixtoload: GET %s = %d\n", pollURL, resp.StatusCode)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var pc, wc counters
	var wg sync.WaitGroup
	for i := 0; i < *pollers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			poll(ctx, client, pollURL, *pollDelay, *gzipOn, &pc)
		}()
	}
	for i := 0; i < *watchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			watch(ctx, client, watchURL, &wc)
		}()
	}
	if ch != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch.run(ctx, *churnInterval)
		}()
	}
	if storm != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			storm.run(ctx, *crashEvery)
		}()
	}
	start := time.Now()
	fmt.Printf("lixtoload: %d pollers + %d watchers on %s for %s\n",
		*pollers, *watchers, pollURL, *duration)
	wg.Wait()
	elapsed := time.Since(start)
	if sink != nil {
		// Let the dispatchers drain their backlog (the at-least-once
		// contract bounds what may still be in flight after a crash).
		sink.settle(10 * time.Second)
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "pollers", "watchers")
	row := func(label string, p, w int64) { fmt.Printf("%-22s %12d %12d\n", label, p, w) }
	row("requests", pc.requests.Load(), wc.requests.Load())
	row("fresh bodies (200)", pc.fresh.Load(), wc.fresh.Load())
	row("not modified (304)", pc.notMod.Load(), 0)
	row("events", 0, wc.events.Load())
	row("heartbeats", 0, wc.heartbeat.Load())
	row("errors", pc.errors.Load(), wc.errors.Load())
	row("body bytes", pc.bytes.Load(), wc.bytes.Load())
	secs := elapsed.Seconds()
	fmt.Printf("%-22s %12.0f %12.0f   (per second)\n", "throughput",
		float64(pc.requests.Load())/secs, float64(wc.events.Load())/secs)
	if n := pc.requests.Load(); n > 0 {
		fmt.Printf("poll efficiency: %.1f%% of requests were 304s (no body, no encode)\n",
			100*float64(pc.notMod.Load())/float64(n))
	}
	if ch != nil {
		ch.report()
	}
	if sink != nil {
		sink.report(client, base, *wrapper)
	}
	if storm != nil {
		storm.report()
	}
}

// poll runs one conditional-GET loop: each response's ETag becomes the
// next request's If-None-Match, so steady state on an unchanged wrapper
// is a stream of body-less 304s.
func poll(ctx context.Context, client *http.Client, url string, delay time.Duration, gz bool, c *counters) {
	etag := ""
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			c.errors.Add(1)
			return
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		if gz {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				c.errors.Add(1)
			}
			continue
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c.requests.Add(1)
		c.bytes.Add(n)
		switch resp.StatusCode {
		case http.StatusOK:
			c.fresh.Add(1)
			etag = resp.Header.Get("ETag")
		case http.StatusNotModified:
			c.notMod.Add(1)
		default:
			c.errors.Add(1)
			etag = ""
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
			}
		}
	}
}

// watch holds one SSE subscription open, counting result events and
// heartbeats, and resubscribes if the stream drops mid-storm.
func watch(ctx context.Context, client *http.Client, url string, c *counters) {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			c.errors.Add(1)
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				c.errors.Add(1)
			}
			continue
		}
		c.requests.Add(1)
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.errors.Add(1)
			continue
		}
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				break
			}
			c.bytes.Add(int64(len(line)))
			switch {
			case strings.HasPrefix(line, "event: result"):
				c.events.Add(1)
			case strings.HasPrefix(line, ": ping"):
				c.heartbeat.Add(1)
			}
		}
		resp.Body.Close()
	}
}
