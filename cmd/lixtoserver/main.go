// Command lixtoserver runs a Lixto Transformation Server instance
// (Section 5) hosting the application pipelines of Section 6 over the
// simulated web, and serves the latest output of each on HTTP:
//
//	lixtoserver [-addr :8080] [-interval 2s] [-steps N]
//
//	GET /nowplaying   the Now Playing portal feed (Section 6.1)
//	GET /flights      the latest flight alerts (6.2)
//	GET /press        the NITF news feed (6.3)
//	GET /power        the power-trading report (6.7)
//
// With -steps N the server runs N synchronous ticks, prints a summary
// and exits (useful without a long-running terminal).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/transform"
	"repro/internal/xmlenc"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	interval := flag.Duration("interval", 2*time.Second, "tick interval")
	steps := flag.Int("steps", 0, "run N ticks and exit (0 = serve forever)")
	flag.Parse()

	np, err := apps.NewNowPlaying(2004)
	if err != nil {
		fatal(err)
	}
	fl, err := apps.NewFlightInfo(2004, []apps.Subscription{{Number: "OS105"}, {Number: "OS110"}})
	if err != nil {
		fatal(err)
	}
	pc, err := apps.NewPressClipping(2004)
	if err != nil {
		fatal(err)
	}
	pw, err := apps.NewPowerTrading(2004)
	if err != nil {
		fatal(err)
	}
	tick := func() {
		np.Step()
		fl.Step(true)
		pc.Step(false, 0)
		pw.Step()
	}

	if *steps > 0 {
		for i := 0; i < *steps; i++ {
			tick()
		}
		fmt.Printf("ran %d ticks\n", *steps)
		fmt.Printf("  nowplaying: %d portal updates\n", np.Portal.Len())
		fmt.Printf("  flights:    %d SMS deliveries\n", fl.SMS.Len())
		fmt.Printf("  press:      %d publications\n", pc.Out.Len())
		fmt.Printf("  power:      %d reports\n", pw.Out.Len())
		return
	}

	serveLatest := func(c *transform.Collector) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			docs := c.Docs()
			if len(docs) == 0 {
				http.Error(w, "no data yet", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/xml")
			fmt.Fprint(w, xmlenc.MarshalIndent(docs[len(docs)-1]))
		}
	}
	http.HandleFunc("/nowplaying", serveLatest(np.Portal))
	http.HandleFunc("/flights", serveLatest(fl.SMS))
	http.HandleFunc("/press", serveLatest(pc.Out))
	http.HandleFunc("/power", serveLatest(pw.Out))

	go func() {
		for {
			tick()
			time.Sleep(*interval)
		}
	}()
	fmt.Printf("lixtoserver: serving on %s (tick every %s)\n", *addr, *interval)
	if err := http.ListenAndServe(*addr, nil); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lixtoserver:", err)
	os.Exit(1)
}
