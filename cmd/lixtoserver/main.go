// Command lixtoserver runs a Lixto Transformation Server instance
// (Section 5) hosting the application pipelines of Section 6 over the
// simulated web, and serves their output on HTTP:
//
//	lixtoserver [-addr :8080] [-interval 2s] [-steps N] [-history N] [-pprof] [-allow-dynamic]
//	            [-shards N] [-workers N] [-jitter F] [-cache-entries N] [-cache-ttl D]
//	            [-watch-queue N] [-watch-heartbeat D] [-incremental-output]
//	            [-data-dir DIR] [-wal-fsync batch|always|off] [-wal-segment-bytes N]
//	            [-wal-max-segments N] [-wal-max-age D] [-wal-compact-segments N]
//	            [-webhook-timeout D] [-webhook-max-attempts N] [-webhook-cooldown D]
//
//	GET /nowplaying           the Now Playing portal feed (Section 6.1)
//	GET /flights              the latest flight alerts (6.2)
//	GET /press                the NITF news feed (6.3)
//	GET /power                the power-trading report (6.7)
//	GET /{name}/history?n=K   the K most recent documents of a pipeline
//	GET /v1/wrappers/{n}/watch  SSE change feed of new result snapshots
//	GET /healthz              liveness probe
//	GET /statusz              per-pipeline tick/error/latency counters
//	GET /debug/pprof/         live profiling (with -pprof)
//
// With -allow-dynamic the versioned wrapper-lifecycle API under /v1
// additionally accepts wrappers at runtime: POST an Elog program to
// /v1/wrappers (with an inline page or against the built-in simulated
// sites), extract synchronously via POST /v1/wrappers/{name}/extract,
// read results from GET /v1/wrappers/{name}/results, and retire with
// DELETE. See the README's "HTTP API v1" section.
//
// -history N bounds each pipeline's retained document ring (default 64).
//
// Documents are served as XML, or as JSON when the request's Accept
// header prefers application/json.
//
// In serve mode the pipelines tick on a sharded timer-heap scheduler:
// -shards timer goroutines own the next-fire deadline heaps and
// dispatch due wrappers into a pool of -workers goroutines, so the
// goroutine count stays O(shards+workers) no matter how many wrappers
// are registered. -jitter 0.1 spreads deadlines by ±10% of the
// interval so a large fleet does not fire in lockstep. -cache-entries
// sizes the shared fetch/document layer deduplicating fetch+parse
// across dynamic wrappers that monitor the same URLs (0 disables);
// -cache-ttl bounds how stale a shared page may be served. -batch
// (default on) additionally shares one match cache across dynamic
// wrappers, so fleets stamped from one template reuse each other's
// compiled pattern matches on shared pages (batched fleet extraction;
// /statusz reports the match_cache block).
// -incremental-output (default on) carries content-addressed reuse
// through the whole tick: wrapper sources retain the previous tick's
// instance base and emitted XML subtrees, rebuild only the subtrees
// whose instances changed, and the delivery plane re-encodes snapshots
// by splicing the cached byte ranges of unchanged frozen subtrees —
// published bytes (and ETags) are identical to a full rebuild, at a
// cost proportional to the dirty region. Disable it to pin or measure
// the full-rebuild path.
// Reads are served from immutable pre-encoded snapshots (strong ETags,
// If-None-Match → 304, gzip) and each wrapper's change feed streams at
// GET /v1/wrappers/{name}/watch as Server-Sent Events: -watch-queue
// bounds each subscriber's pending-event queue (slow clients drop their
// oldest events rather than stalling delivery) and -watch-heartbeat
// sets the SSE comment-ping period that keeps idle connections alive
// through proxies.
// With -data-dir every delivery is appended to a per-wrapper result
// log (a length-prefixed, CRC-checked WAL with segment rotation) before
// it is acknowledged; on restart the server rehydrates collector rings,
// published snapshots (ETags included), dynamic wrapper registrations,
// and webhook cursors from the logs, so reads and subscriptions resume
// byte-identically after a crash. -wal-fsync picks the durability
// trade: batch (default, a background syncer flushes every 50ms),
// always (fsync per append), or off. -wal-compact-segments N compacts a
// wrapper's log once N closed segments accumulate: the latest snapshot
// is written as a checkpoint record and every older segment is deleted,
// so restore cost stays bounded for long-lived wrappers instead of
// growing with their lifetime. Outbound webhooks — registered via
// POST /v1/wrappers/{name}/webhooks — push each new result to HTTP
// endpoints with retry/backoff and a circuit breaker, tuned by the
// -webhook-* flags.
// SIGINT/SIGTERM shuts the server down gracefully, draining queued and
// in-flight ticks (including dynamically registered wrappers). With
// -steps N the server instead runs N synchronous ticks, prints a
// summary and exits (useful without a long-running terminal).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/resultlog"
	"repro/internal/server"
	"repro/internal/web"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	interval := flag.Duration("interval", 2*time.Second, "tick interval")
	steps := flag.Int("steps", 0, "run N ticks and exit (0 = serve forever)")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof endpoints")
	history := flag.Int("history", 0, "documents retained per pipeline (0 = default 64)")
	allowDynamic := flag.Bool("allow-dynamic", false,
		"accept wrapper registration at runtime via the /v1 API")
	shards := flag.Int("shards", 0, "scheduler timer shards (0 = default 4)")
	workers := flag.Int("workers", 0, "scheduler tick workers (0 = GOMAXPROCS)")
	jitter := flag.Float64("jitter", 0, "deadline jitter as a fraction of the interval (0..0.5)")
	cacheEntries := flag.Int("cache-entries", 1024, "shared fetch cache capacity in pages (0 disables)")
	cacheTTL := flag.Duration("cache-ttl", time.Second, "shared fetch cache freshness window (0 = never stale)")
	batch := flag.Bool("batch", true, "share one match cache across dynamic wrappers (batched fleet extraction)")
	matchCacheEntries := flag.Int("match-cache-entries", 0,
		"shared match cache capacity in entries, LRU-evicted (0 = default 65536)")
	watchQueue := flag.Int("watch-queue", 0, "pending events buffered per watch subscriber (0 = default 8)")
	watchHeartbeat := flag.Duration("watch-heartbeat", 0, "SSE heartbeat period for watch streams (0 = default 15s)")
	dataDir := flag.String("data-dir", "",
		"directory for durable result logs; enables crash recovery and webhook cursors (empty = in-memory only)")
	walFsync := flag.String("wal-fsync", "batch", "result-log fsync policy: batch, always, or off")
	walFsyncInterval := flag.Duration("wal-fsync-interval", 0, "batched fsync period (0 = default 50ms)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "result-log segment rotation size (0 = default 4MiB)")
	walMaxSegments := flag.Int("wal-max-segments", 0, "closed segments retained per wrapper (0 = default 8)")
	walMaxAge := flag.Duration("wal-max-age", 0, "drop closed segments older than this (0 = keep by count only)")
	walCompactSegments := flag.Int("wal-compact-segments", 0,
		"checkpoint-compact a wrapper's log once this many closed segments accumulate (0 disables)")
	incrementalOutput := flag.Bool("incremental-output", true,
		"reuse unchanged output subtrees and encoded byte ranges across ticks (off = full rebuild per tick)")
	webhookTimeout := flag.Duration("webhook-timeout", 0, "outbound webhook request timeout (0 = default 5s)")
	webhookAttempts := flag.Int("webhook-max-attempts", 0,
		"consecutive webhook failures before the circuit breaker opens (0 = default 6)")
	webhookCooldown := flag.Duration("webhook-cooldown", 0, "breaker cooldown before the half-open probe (0 = default 30s)")
	flag.Parse()
	if *history < 0 {
		fatal(fmt.Errorf("-history must be >= 0, got %d", *history))
	}
	if *jitter < 0 || *jitter > 0.5 {
		fatal(fmt.Errorf("-jitter must be in [0, 0.5], got %g", *jitter))
	}

	np, err := apps.NewNowPlaying(2004)
	if err != nil {
		fatal(err)
	}
	fl, err := apps.NewFlightInfo(2004, []apps.Subscription{{Number: "OS105"}, {Number: "OS110"}})
	if err != nil {
		fatal(err)
	}
	pc, err := apps.NewPressClipping(2004)
	if err != nil {
		fatal(err)
	}
	pw, err := apps.NewPowerTrading(2004)
	if err != nil {
		fatal(err)
	}
	if *history > 0 {
		// Retention is latched on the first delivery; no tick has run yet.
		for _, p := range []server.Pipeline{np, fl, pc, pw} {
			p.Output().Retain = *history
		}
	}

	if *steps > 0 {
		for i := 0; i < *steps; i++ {
			np.Step()
			fl.Step(true)
			pc.Step(false, 0)
			pw.Step()
		}
		fmt.Printf("ran %d ticks\n", *steps)
		fmt.Printf("  nowplaying: %d portal updates\n", np.Portal.Len())
		fmt.Printf("  flights:    %d SMS deliveries\n", fl.SMS.Len())
		fmt.Printf("  press:      %d publications\n", pc.Out.Len())
		fmt.Printf("  power:      %d reports\n", pw.Out.Len())
		return
	}

	cfg := server.Config{
		Addr:                *addr,
		DefaultInterval:     *interval,
		EnablePprof:         *pprofFlag,
		SchedulerShards:     *shards,
		SchedulerWorkers:    *workers,
		SchedulerJitter:     *jitter,
		WatchQueue:          *watchQueue,
		WatchHeartbeat:      *watchHeartbeat,
		WebhookTimeout:      *webhookTimeout,
		WebhookCooldown:     *webhookCooldown,
		NoIncrementalOutput: !*incrementalOutput,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	cfg.WebhookMaxAttempts = *webhookAttempts
	var store *resultlog.Store
	if *dataDir != "" {
		mode, err := resultlog.ParseFsyncMode(*walFsync)
		if err != nil {
			fatal(err)
		}
		store, err = resultlog.Open(*dataDir, resultlog.Options{
			SegmentBytes:    *walSegmentBytes,
			MaxSegments:     *walMaxSegments,
			MaxAge:          *walMaxAge,
			Fsync:           mode,
			FsyncInterval:   *walFsyncInterval,
			CompactSegments: *walCompactSegments,
		})
		if err != nil {
			fatal(err)
		}
		cfg.ResultStore = store
	}
	if *cacheEntries > 0 {
		cfg.SharedCache = fetchcache.New(*cacheEntries, *cacheTTL)
	}
	if *batch {
		cfg.MatchCache = elog.NewMatchCacheSize(*matchCacheEntries)
	}
	if *allowDynamic {
		// Dynamic wrappers without an inline page extract from the
		// built-in simulated sites.
		sim := web.New()
		web.NewAuctionSite(2004, 40).Register(sim, "www.ebay.com")
		web.NewBookSite(2004, 12).Register(sim, "books.example.com")
		cfg.AllowDynamic = true
		cfg.DynamicFetcher = sim
	}
	srv := server.New(cfg)
	for _, p := range []server.Pipeline{np, fl, pc, pw} {
		if err := srv.Register(p, 0); err != nil {
			fatal(err)
		}
	}
	if store != nil {
		// Rehydrate collector rings, snapshots, dynamic wrappers, and
		// webhook cursors from the previous run's result logs.
		n, err := srv.Restore()
		if err != nil {
			fatal(err)
		}
		if n > 0 {
			fmt.Printf("lixtoserver: restored %d wrapper(s) from %s\n", n, *dataDir)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("lixtoserver: serving on %s (tick every %s)\n", *addr, *interval)
	if err := srv.Run(ctx); err != nil {
		fatal(err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lixtoserver:", err)
	os.Exit(1)
}
