// Command benchdiff compares two benchreport -json files and prints a
// benchstat-style before/after table: time and allocation deltas per
// benchmark, with geometric-mean summaries over the common set.
//
// Usage:
//
//	benchdiff [-max-regress factor] old.json new.json
//
// With -max-regress set, benchdiff exits nonzero when any common
// benchmark's time regresses by more than the given factor (e.g.
// -max-regress 1.5 fails on a >1.5x slowdown), making it usable as a
// CI gate; without it the comparison is informational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

func load(path string) (map[string]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]entry{}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// delta renders a new/old ratio the way benchstat does: negative
// percentages are improvements.
func delta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
}

func main() {
	maxRegress := flag.Float64("max-regress", 0, "fail when any benchmark's time regresses by more than this factor (0 = never fail)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress factor] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	new, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	var names []string
	for name := range new {
		names = append(names, name)
	}
	sort.Strings(names)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told time/op\tnew time/op\tdelta\told allocs/op\tnew allocs/op\tdelta\n")
	var logSumNs, logSumAllocs float64
	common := 0
	worst, worstName := 0.0, ""
	for _, name := range names {
		nb := new[name]
		ob, ok := old[name]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%s\t(new)\t-\t%.0f\t(new)\n", name, fmtNs(nb.NsPerOp), nb.AllocsPerOp)
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f\t%.0f\t%s\n",
			name, fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp, delta(ob.AllocsPerOp, nb.AllocsPerOp))
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			ratio := nb.NsPerOp / ob.NsPerOp
			logSumNs += math.Log(ratio)
			if ob.AllocsPerOp > 0 && nb.AllocsPerOp > 0 {
				logSumAllocs += math.Log(nb.AllocsPerOp / ob.AllocsPerOp)
			}
			common++
			if ratio > worst {
				worst, worstName = ratio, name
			}
		}
	}
	for _, name := range sortedKeys(old) {
		if _, ok := new[name]; !ok {
			fmt.Fprintf(w, "%s\t%s\t-\t(removed)\t%.0f\t-\t(removed)\n", name, fmtNs(old[name].NsPerOp), old[name].AllocsPerOp)
		}
	}
	w.Flush()
	if common > 0 {
		fmt.Printf("\ngeomean over %d common benchmarks: time %+.1f%%, allocs %+.1f%%\n",
			common, (math.Exp(logSumNs/float64(common))-1)*100,
			(math.Exp(logSumAllocs/float64(common))-1)*100)
	}
	if *maxRegress > 0 && worst > *maxRegress {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.2fx (> %.2fx budget)\n", worstName, worst, *maxRegress)
		os.Exit(1)
	}
}

func sortedKeys(m map[string]entry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
